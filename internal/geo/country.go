package geo

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Urbanization is the INSEE-inspired land-use class of a commune. The
// paper groups communes into urban, semi-urban and rural, and splits
// rural communes crossed by a TGV line into their own category because
// their traffic is dominated by passengers at 300 km/h rather than by
// residents.
type Urbanization int

const (
	// Urban communes belong to a dense city core.
	Urban Urbanization = iota
	// SemiUrban communes form the periphery of cities and mid-size towns.
	SemiUrban
	// Rural communes are countryside far from dense cores.
	Rural
	// RuralTGV communes are rural communes crossed by a high-speed line.
	RuralTGV
)

// NumUrbanization is the number of urbanization classes.
const NumUrbanization = 4

// String returns the class label used in Fig. 11.
func (u Urbanization) String() string {
	switch u {
	case Urban:
		return "Urban"
	case SemiUrban:
		return "Semi-Urban"
	case Rural:
		return "Rural"
	case RuralTGV:
		return "TGV"
	default:
		return fmt.Sprintf("Urbanization(%d)", int(u))
	}
}

// Tech is the best radio access technology available in a commune.
type Tech int

const (
	// Tech3G means only 3G coverage (pervasive in the study country).
	Tech3G Tech = iota
	// Tech4G means 4G is available (cities and main corridors).
	Tech4G
)

// String returns the technology label.
func (t Tech) String() string {
	if t == Tech4G {
		return "4G"
	}
	return "3G"
}

// Commune is one cell of the spatial tessellation.
type Commune struct {
	ID           int
	Center       Point
	AreaKm2      float64
	Population   int
	Subscribers  int // operator's user base in the commune
	Urbanization Urbanization
	Coverage     Tech
	// DistToCity is the distance to the nearest major city centre (km).
	DistToCity float64
	// DistToTGV is the distance to the nearest TGV corridor (km).
	DistToTGV float64
}

// City is a major population centre.
type City struct {
	Name       string
	Center     Point
	Population int
	// Radius is the e-folding scale of the city's density kernel (km).
	Radius float64
}

// Country is the full synthetic territory.
type Country struct {
	WidthKm, HeightKm float64
	Communes          []Commune
	Cities            []City
	TGVLines          []Polyline
}

// Config controls country generation. The defaults reproduce the
// study's France-scale numbers.
type Config struct {
	// NumCommunes is the number of lattice cells (default 36000).
	NumCommunes int
	// NumCities is the number of major centres (default 40).
	NumCities int
	// Population is the total resident population (default 64M).
	Population int
	// OperatorShare is the fraction of residents subscribing to the
	// studied operator (default 0.47, giving ≈ 30M subscribers).
	OperatorShare float64
	// Seed drives all randomness; equal seeds give identical countries.
	Seed uint64
}

// DefaultConfig returns the France-scale configuration used by the
// nationwide experiments: ≈ 550,000 km², 36,000 communes of ≈ 16 km²,
// 30M subscribers.
func DefaultConfig() Config {
	return Config{
		NumCommunes:   36000,
		NumCities:     40,
		Population:    64_000_000,
		OperatorShare: 0.47,
		Seed:          1,
	}
}

// SmallConfig returns a laptop-scale country (a few hundred communes,
// a dense region rather than a whole nation) for tests and examples.
func SmallConfig() Config {
	return Config{
		NumCommunes:   400,
		NumCities:     6,
		Population:    10_000_000,
		OperatorShare: 0.47,
		Seed:          1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.NumCommunes <= 0 {
		c.NumCommunes = d.NumCommunes
	}
	if c.NumCities <= 0 {
		c.NumCities = d.NumCities
	}
	if c.Population <= 0 {
		c.Population = d.Population
	}
	if c.OperatorShare <= 0 || c.OperatorShare > 1 {
		c.OperatorShare = d.OperatorShare
	}
	return c
}

// cityNames label the largest synthetic cities after the French metro
// areas the paper's maps highlight; the rest get generated names.
var cityNames = []string{
	"Paris", "Lyon", "Marseille", "Toulouse", "Lille", "Bordeaux",
	"Nice", "Nantes", "Strasbourg", "Rennes", "Grenoble", "Rouen",
	"Toulon", "Montpellier", "Douai", "Avignon", "Saint-Etienne",
}

// Generate builds a deterministic synthetic country from the config.
//
// The construction follows the drivers the paper identifies:
//   - city populations follow a rank-size (Zipf) law, so commune
//     populations inherit a realistic heavy tail;
//   - TGV corridors connect the largest city to the next largest ones,
//     so high-speed lines cross rural territory between metros;
//   - 4G coverage concentrates on dense areas and corridors while 3G is
//     pervasive, which later gates high-rate services such as Netflix.
func Generate(cfg Config) *Country {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x67656f)) // "geo"

	// Keep the average commune surface at the French value (~16 km²)
	// whatever the commune count; at the default 36,000 communes the
	// country covers ≈ 576,000 km², matching the paper's "more than
	// 550,000 km²".
	const communeArea = 16.0
	side := math.Sqrt(communeArea * float64(cfg.NumCommunes))
	country := &Country{WidthKm: side, HeightKm: side}

	country.Cities = placeCities(rng, cfg, side)
	country.TGVLines = buildTGV(country.Cities)

	// Jittered square lattice of communes.
	cols := int(math.Ceil(math.Sqrt(float64(cfg.NumCommunes))))
	cell := side / float64(cols)
	communes := make([]Commune, 0, cfg.NumCommunes)
	for id := 0; id < cfg.NumCommunes; id++ {
		row := id / cols
		col := id % cols
		center := Point{
			X: (float64(col)+0.5)*cell + (rng.Float64()-0.5)*cell*0.6,
			Y: (float64(row)+0.5)*cell + (rng.Float64()-0.5)*cell*0.6,
		}
		communes = append(communes, Commune{
			ID:      id,
			Center:  center,
			AreaKm2: cell * cell,
		})
	}

	assignPopulation(rng, cfg, communes, country)
	classify(communes, country)
	country.Communes = communes
	return country
}

// placeCities spreads the major centres with a minimum separation and a
// Zipf rank-size population law (exponent ~1.07, the classic value for
// city systems).
func placeCities(rng *rand.Rand, cfg Config, side float64) []City {
	cities := make([]City, 0, cfg.NumCities)
	// 55% of the population lives in the city kernels (metropolitan France:
	// urban units hold well over half the residents).
	urbanPop := float64(cfg.Population) * 0.60
	var totalW float64
	weights := make([]float64, cfg.NumCities)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -1.15)
		totalW += weights[i]
	}
	minSep := side / math.Sqrt(float64(cfg.NumCities)) / 1.4
	for i := 0; i < cfg.NumCities; i++ {
		var p Point
		for try := 0; ; try++ {
			p = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
			ok := true
			for _, c := range cities {
				if c.Center.Dist(p) < minSep {
					ok = false
					break
				}
			}
			if ok || try > 200 {
				break
			}
		}
		name := fmt.Sprintf("City-%02d", i+1)
		if i < len(cityNames) {
			name = cityNames[i]
		}
		pop := int(urbanPop * weights[i] / totalW)
		cities = append(cities, City{
			Name:       name,
			Center:     p,
			Population: pop,
			// Bigger cities spread wider: radius grows with the cube
			// root of population, anchored at ~12 km for the largest.
			Radius: 2.5 + 5.5*math.Cbrt(weights[i]/weights[0]),
		})
	}
	return cities
}

// buildTGV connects the largest city to the next four, mimicking the
// radial French high-speed network (Paris-Lyon-Marseille etc.).
func buildTGV(cities []City) []Polyline {
	if len(cities) < 2 {
		return nil
	}
	hub := cities[0]
	var lines []Polyline
	n := len(cities) - 1
	if n > 4 {
		n = 4
	}
	for i := 1; i <= n; i++ {
		// A gentle midpoint bend so lines do not all look straight.
		mid := Point{
			X: (hub.Center.X+cities[i].Center.X)/2 + float64(i-2)*15,
			Y: (hub.Center.Y+cities[i].Center.Y)/2 - float64(i-2)*10,
		}
		lines = append(lines, Polyline{hub.Center, mid, cities[i].Center})
	}
	// One transversal line between cities 1 and 2 (Lyon-Marseille).
	if len(cities) >= 3 {
		lines = append(lines, Polyline{cities[1].Center, cities[2].Center})
	}
	return lines
}

// assignPopulation distributes residents over communes: a normalized
// exponential density kernel around each city (mass Pop_city, scale
// Radius) plus a lognormal rural floor, so that city cores are dense
// while countryside communes keep realistic village populations.
func assignPopulation(rng *rand.Rand, cfg Config, communes []Commune, country *Country) {
	weights := make([]float64, len(communes))
	var totalW float64
	for i := range communes {
		p := communes[i].Center
		area := communes[i].AreaKm2
		// City kernels: density Pop·exp(-d/R)/(2πR²) integrated over
		// the commune cell.
		var w float64
		nearest := math.Inf(1)
		for _, c := range country.Cities {
			d := c.Center.Dist(p)
			if d < nearest {
				nearest = d
			}
			w += float64(c.Population) * math.Exp(-d/c.Radius) / (2 * math.Pi * c.Radius * c.Radius) * area
		}
		communes[i].DistToCity = nearest
		// Rural floor with lognormal heterogeneity (villages vs hamlets).
		w += 300.0 * math.Exp(rng.NormFloat64()*0.9-0.405)
		weights[i] = w
		totalW += w
		// Distance to the TGV network.
		dTGV := math.Inf(1)
		for _, l := range country.TGVLines {
			if d := l.DistTo(p); d < dTGV {
				dTGV = d
			}
		}
		communes[i].DistToTGV = dTGV
	}
	for i := range communes {
		pop := int(float64(cfg.Population) * weights[i] / totalW)
		if pop < 10 {
			pop = 10
		}
		communes[i].Population = pop
		subs := int(float64(pop) * cfg.OperatorShare)
		if subs < 1 {
			subs = 1
		}
		communes[i].Subscribers = subs
	}
}

// classify derives the urbanization class and radio coverage of every
// commune. Classes follow the *density ranking* (top 2% of communes by
// population density are urban, the next 10% semi-urban), mirroring how
// the INSEE grid classifies a roughly fixed share of French territory;
// rank-based thresholds keep every class populated at any simulation
// scale.
func classify(communes []Commune, country *Country) {
	densities := make([]float64, len(communes))
	for i := range communes {
		densities[i] = float64(communes[i].Population) / communes[i].AreaKm2
	}
	sorted := append([]float64(nil), densities...)
	sort.Float64s(sorted)
	q := func(f float64) float64 {
		idx := int(f * float64(len(sorted)-1))
		return sorted[idx]
	}
	urbanThresh := q(0.98)
	semiThresh := q(0.88)
	for i := range communes {
		c := &communes[i]
		density := densities[i]
		switch {
		case density >= urbanThresh:
			c.Urbanization = Urban
		case density >= semiThresh:
			c.Urbanization = SemiUrban
		default:
			c.Urbanization = Rural
		}
		// Rural communes crossed by a high-speed line are their own
		// group; the corridor half-width is ~4 km (ULI error scale).
		if c.Urbanization == Rural && c.DistToTGV <= 4 {
			c.Urbanization = RuralTGV
		}
		// 4G: dense areas, city surroundings and corridors; 3G elsewhere.
		switch {
		case density >= semiThresh, c.DistToCity <= 25, c.DistToTGV <= 4:
			c.Coverage = Tech4G
		default:
			c.Coverage = Tech3G
		}
	}
}

// CommunesByUrbanization groups commune indices per class.
func (c *Country) CommunesByUrbanization() map[Urbanization][]int {
	out := make(map[Urbanization][]int, NumUrbanization)
	for i := range c.Communes {
		u := c.Communes[i].Urbanization
		out[u] = append(out[u], i)
	}
	return out
}

// TotalSubscribers returns the operator's nationwide user base.
func (c *Country) TotalSubscribers() int {
	var total int
	for i := range c.Communes {
		total += c.Communes[i].Subscribers
	}
	return total
}

// NearestCommune returns the index of the commune whose centre is
// closest to p (used to map base stations / ULI fixes onto the
// tessellation). Linear scan: only the packet-path simulator calls it
// per-event, at small scale.
func (c *Country) NearestCommune(p Point) int {
	best, bestIdx := math.Inf(1), -1
	for i := range c.Communes {
		if d := c.Communes[i].Center.Dist(p); d < best {
			best, bestIdx = d, i
		}
	}
	return bestIdx
}
