package core

import (
	"time"

	"repro/internal/geo"
	"repro/internal/services"
	"repro/internal/timeseries"
)

// Dataset is the study input the analysis pipeline computes on: the
// aggregates of Sections 3-5 of the paper, independent of how they
// were obtained. Two backends exist — the synthetic nationwide
// generator (internal/synth) and the probe-measured adapter
// (internal/measured), which materializes the same aggregates from the
// packet pipeline's output — and both flow through identical analysis
// code.
//
// Contract, shared by every implementation:
//
//   - Services() fixes the service indexing: every per-service accessor
//     takes an index into that slice.
//   - All spatial vectors (SpatialVolumes, PerUser) are indexed by
//     commune ID, i.e. by position in Geography().Communes.
//   - All series cover the study week at SampleStep() resolution and
//     start at timeseries.StudyStart.
//   - AllVolumes lists the named services first, in Services() order,
//     followed by any long-tail services (the Fig. 2 rank-size input
//     before sorting).
//
// Accessors may return internal slices for efficiency; callers must
// not mutate them.
type Dataset interface {
	// Services returns the named service catalogue.
	Services() []services.Service
	// Geography returns the spatial substrate the data lives on.
	Geography() *geo.Country
	// SampleStep returns the time resolution of every series.
	SampleStep() time.Duration
	// ServiceIndex resolves a service name to its catalogue index, or
	// returns an error for unknown names.
	ServiceIndex(name string) (int, error)
	// NationalSeries returns the nationwide traffic time series of the
	// named service (bytes per sample).
	NationalSeries(dir services.Direction, svc int) *timeseries.Series
	// NationalTotal returns the weekly national volume of the service.
	NationalTotal(dir services.Direction, svc int) float64
	// AllVolumes returns the weekly volumes of the full service
	// population: named catalogue first, then the tail.
	AllVolumes(dir services.Direction) []float64
	// TotalTraffic returns the nationwide weekly volume across all
	// named and tail services.
	TotalTraffic(dir services.Direction) float64
	// SpatialVolumes returns the per-commune weekly volume of the
	// service (bytes), indexed by commune ID.
	SpatialVolumes(dir services.Direction, svc int) []float64
	// PerUser returns the per-commune weekly volume per subscriber
	// (the Fig. 8 CDF sample and the Fig. 9/10 map vector).
	PerUser(dir services.Direction, svc int) []float64
	// GroupSeries returns the service's traffic series aggregated over
	// the communes of one urbanization class.
	GroupSeries(dir services.Direction, svc int, u geo.Urbanization) *timeseries.Series
	// GroupPerUser returns the per-user series of one urbanization
	// class: GroupSeries divided by the class subscriber count (the
	// Fig. 11 regression input).
	GroupPerUser(dir services.Direction, svc int, u geo.Urbanization) *timeseries.Series
	// ClassSubscribers returns the subscriber count of one
	// urbanization class.
	ClassSubscribers(u geo.Urbanization) int
}
