// The tests live in core_test so the analysis package itself stays
// free of any dataset-backend dependency: core sees only the Dataset
// interface, and the synthetic generator enters through it.
package core_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/peaks"
	"repro/internal/services"
	"repro/internal/synth"
)

var (
	smallOnce sync.Once
	smallDS   *synth.Dataset
)

// dataset memoizes the laptop-scale dataset across tests.
func dataset(t *testing.T) *synth.Dataset {
	t.Helper()
	smallOnce.Do(func() {
		ds, err := synth.Generate(synth.SmallConfig())
		if err != nil {
			t.Fatal(err)
		}
		smallDS = ds
	})
	return smallDS
}

func TestServiceRanking(t *testing.T) {
	ds := dataset(t)
	a := core.New(ds)
	for _, dir := range []services.Direction{services.DL, services.UL} {
		r, err := a.ServiceRanking(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Volumes) != ds.Cfg.TotalServices {
			t.Errorf("%v: %d volumes", dir, len(r.Volumes))
		}
		for i := 1; i < len(r.Volumes); i++ {
			if r.Volumes[i] > r.Volumes[i-1] {
				t.Fatalf("%v: ranking not sorted at %d", dir, i)
			}
		}
		if r.Normalized[0] != 1 {
			t.Errorf("%v: normalized[0] = %v", dir, r.Normalized[0])
		}
		if r.HeadFit.Exponent >= 0 {
			t.Errorf("%v: positive Zipf exponent %v", dir, r.HeadFit.Exponent)
		}
	}
}

func TestTop20SharesAndOrder(t *testing.T) {
	a := core.New(dataset(t))
	top := a.Top20(services.DL)
	if len(top) != 20 {
		t.Fatalf("top20 has %d entries", len(top))
	}
	if top[0].Name != "YouTube" {
		t.Errorf("top DL service = %s", top[0].Name)
	}
	var total float64
	for i, r := range top {
		if i > 0 && r.Share > top[i-1].Share {
			t.Error("top20 not sorted")
		}
		total += r.Share
	}
	if total < 0.55 || total > 0.75 {
		t.Errorf("top20 total share = %v, want ≈ 0.62 (\"over 60%%\")", total)
	}
	// Video ≈ 46% of downlink.
	video := a.CategoryShare(services.DL, services.Video)
	if math.Abs(video-0.46) > 0.02 {
		t.Errorf("video DL share = %v, want ≈ 0.46", video)
	}
	// UL leader is SnapChat.
	topUL := a.Top20(services.UL)
	if topUL[0].Name != "SnapChat" {
		t.Errorf("top UL service = %s", topUL[0].Name)
	}
}

// rankStub is a minimal Dataset implementation exercising the ranking
// paths with a catalogue larger than 20 services. Everything the
// ranking does not touch panics.
type rankStub struct {
	core.Dataset // panic-on-use fallback for unimplemented methods
	svcs         []services.Service
	vols         []float64
}

func (s *rankStub) Services() []services.Service { return s.svcs }
func (s *rankStub) NationalTotal(dir services.Direction, svc int) float64 {
	return s.vols[svc]
}
func (s *rankStub) TotalTraffic(dir services.Direction) float64 {
	var t float64
	for _, v := range s.vols {
		t += v
	}
	return t
}

func TestTop20CapsAtTwenty(t *testing.T) {
	stub := &rankStub{}
	for i := 0; i < 25; i++ {
		cat := services.Web
		if i%2 == 0 {
			cat = services.Video
		}
		stub.svcs = append(stub.svcs, services.Service{Name: string(rune('A' + i)), Category: cat})
		stub.vols = append(stub.vols, float64(100-i))
	}
	a := core.New(stub)
	top := a.Top20(services.DL)
	if len(top) != 20 {
		t.Fatalf("Top20 returned %d entries for a 25-service catalogue", len(top))
	}
	if top[0].Name != "A" || top[0].Share <= top[19].Share {
		t.Errorf("capped ranking not sorted: first %+v last %+v", top[0], top[19])
	}
	// CategoryShare covers the whole catalogue, not only the cap, and
	// both categories jointly account for all traffic.
	sum := a.CategoryShare(services.DL, services.Video) + a.CategoryShare(services.DL, services.Web)
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("category shares over full catalogue sum to %v, want 1", sum)
	}
}

func TestPeakCalendars(t *testing.T) {
	ds := dataset(t)
	a := core.New(ds)
	cals, outside, err := a.PeakCalendars(services.DL)
	if err != nil {
		t.Fatal(err)
	}
	if outside != 0 {
		t.Errorf("%d peaks outside topical windows", outside)
	}
	if len(cals) != 20 {
		t.Fatalf("%d calendars", len(cals))
	}
	// Detected calendars must match the configured signatures exactly
	// (the services-package contract carries over to noisy national
	// series).
	for i, c := range cals {
		svc := &ds.Catalog[i]
		for tt := 0; tt < peaks.NumTopicalTimes; tt++ {
			if svc.PeakAmp[tt] > 0 != c.Calendar.Present[tt] {
				t.Errorf("%s: detected[%v]=%v configured=%v",
					c.Service, peaks.TopicalTime(tt), c.Calendar.Present[tt], svc.PeakAmp[tt] > 0)
			}
		}
	}
	if got := core.DistinctCalendarCount(cals); got != 20 {
		t.Errorf("distinct calendars = %d, want 20", got)
	}
}

func TestPeakIntensitiesPositive(t *testing.T) {
	a := core.New(dataset(t))
	cals, _, err := a.PeakCalendars(services.DL)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cals {
		for tt := 0; tt < peaks.NumTopicalTimes; tt++ {
			if c.Calendar.Present[tt] && c.Calendar.Intensity[tt] <= 0 {
				t.Errorf("%s at %v: non-positive intensity", c.Service, peaks.TopicalTime(tt))
			}
			if !c.Calendar.Present[tt] && c.Calendar.Intensity[tt] != 0 {
				t.Errorf("%s at %v: intensity without presence", c.Service, peaks.TopicalTime(tt))
			}
		}
	}
}

func TestDetectOn(t *testing.T) {
	a := core.New(dataset(t))
	s, res, pks, err := a.DetectOn(services.DL, "Facebook")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(res.Signals) {
		t.Error("result misaligned with series")
	}
	if len(pks) == 0 {
		t.Error("no peaks detected on Facebook")
	}
	if _, _, _, err := a.DetectOn(services.DL, "nope"); err == nil {
		t.Error("unknown service: want error")
	}
}

func TestClusterSweepShape(t *testing.T) {
	a := core.New(dataset(t))
	sweep, err := a.ClusterSweep(services.DL, 2, 19, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 18 {
		t.Fatalf("sweep has %d points", len(sweep))
	}
	// The paper's finding: no k wins; quality degrades with k. We
	// assert the trend: Silhouette at high k clearly below low k.
	early := (sweep[0].Scores.Silhouette + sweep[1].Scores.Silhouette) / 2
	late := (sweep[16].Scores.Silhouette + sweep[17].Scores.Silhouette) / 2
	if !(late < early) {
		t.Errorf("silhouette does not degrade: early %.3f late %.3f", early, late)
	}
	for _, p := range sweep {
		if p.Scores.K != p.K {
			t.Errorf("score K mismatch at %d", p.K)
		}
	}
}

func TestClusterSweepValidation(t *testing.T) {
	a := core.New(dataset(t))
	if _, err := a.ClusterSweep(services.DL, 1, 5, 1); err == nil {
		t.Error("kMin=1: want error")
	}
	if _, err := a.ClusterSweep(services.DL, 2, 30, 1); err == nil {
		t.Error("kMax >= services: want error")
	}
}

func TestSpatialConcentration(t *testing.T) {
	ds := dataset(t)
	a := core.New(ds)
	c, err := a.SpatialConcentration(services.DL, "Twitter")
	if err != nil {
		t.Fatal(err)
	}
	if c.TopShares[0.01] <= 0 || c.TopShares[0.01] >= 1 {
		t.Errorf("top1%% share = %v", c.TopShares[0.01])
	}
	if c.TopShares[0.10] <= c.TopShares[0.01] {
		t.Error("shares must grow with fraction")
	}
	if got := c.TopShares[1]; math.Abs(got-1) > 1e-9 {
		t.Errorf("full share = %v", got)
	}
	if c.Gini <= 0.3 {
		t.Errorf("Gini = %v, want strong concentration", c.Gini)
	}
	if c.CDF.Len() != len(ds.Country.Communes) {
		t.Error("CDF sample size mismatch")
	}
	if _, err := a.SpatialConcentration(services.DL, "nope"); err == nil {
		t.Error("unknown service: want error")
	}
}

func TestSpatialCorrelationAnalysis(t *testing.T) {
	ds := dataset(t)
	a := core.New(ds)
	sc, err := a.SpatialCorrelationAnalysis(services.DL)
	if err != nil {
		t.Fatal(err)
	}
	n := len(ds.Catalog)
	if len(sc.Pairs) != n*(n-1)/2 {
		t.Fatalf("pair count = %d", len(sc.Pairs))
	}
	for i := 0; i < n; i++ {
		if sc.R2[i][i] != 1 {
			t.Error("diagonal must be 1")
		}
		for j := 0; j < n; j++ {
			if sc.R2[i][j] != sc.R2[j][i] {
				t.Error("matrix not symmetric")
			}
			if sc.R2[i][j] < 0 || sc.R2[i][j] > 1 {
				t.Errorf("r2 out of range: %v", sc.R2[i][j])
			}
		}
	}
	if sc.Mean <= 0.2 || sc.Mean >= 0.95 {
		t.Errorf("mean r2 = %v", sc.Mean)
	}
	// The rank-based robustness mean must exist and roughly agree with
	// the moment-based one (the finding is not an outlier artefact).
	if sc.MeanSpearman <= 0.1 || sc.MeanSpearman > 1 {
		t.Errorf("mean Spearman² = %v", sc.MeanSpearman)
	}
	if math.Abs(sc.MeanSpearman-sc.Mean) > 0.35 {
		t.Errorf("Spearman² %v and r² %v disagree wildly", sc.MeanSpearman, sc.Mean)
	}
	// Netflix and iCloud are the outlier rows: the two lowest means.
	type nm struct {
		name string
		mean float64
	}
	rows := make([]nm, n)
	for i := range rows {
		rows[i] = nm{sc.Names[i], sc.ServiceMean[i]}
	}
	lowest1, lowest2 := rows[0], rows[1]
	if lowest1.mean > lowest2.mean {
		lowest1, lowest2 = lowest2, lowest1
	}
	for _, r := range rows[2:] {
		if r.mean < lowest1.mean {
			lowest2 = lowest1
			lowest1 = r
		} else if r.mean < lowest2.mean {
			lowest2 = r
		}
	}
	outliers := map[string]bool{lowest1.name: true, lowest2.name: true}
	if !outliers["Netflix"] || !outliers["iCloud"] {
		t.Errorf("lowest-correlation services = %v, want Netflix and iCloud", outliers)
	}
}

func TestUrbanizationAnalysis(t *testing.T) {
	a := core.New(dataset(t))
	res, err := a.UrbanizationAnalysis(services.DL)
	if err != nil {
		t.Fatal(err)
	}
	for s := range res.Names {
		if math.Abs(res.Slopes[s][geo.Urban]-1) > 1e-9 {
			t.Errorf("%s: urban self-slope = %v", res.Names[s], res.Slopes[s][geo.Urban])
		}
	}
	// Aggregate behaviour across services (small config is noisy per
	// service): semi-urban ≈ 1, rural ≈ 0.5, TGV ≥ 1.5.
	var semi, rural, tgv float64
	for s := range res.Names {
		semi += res.Slopes[s][geo.SemiUrban]
		rural += res.Slopes[s][geo.Rural]
		tgv += res.Slopes[s][geo.RuralTGV]
	}
	n := float64(len(res.Names))
	semi, rural, tgv = semi/n, rural/n, tgv/n
	if semi < 0.7 || semi > 1.3 {
		t.Errorf("mean semi-urban slope = %v", semi)
	}
	if rural < 0.3 || rural > 0.75 {
		t.Errorf("mean rural slope = %v", rural)
	}
	if tgv < 1.4 {
		t.Errorf("mean TGV slope = %v", tgv)
	}
	// Temporal correlations: urban row high, TGV row lowest.
	var urbanR2, tgvR2 float64
	for s := range res.Names {
		urbanR2 += res.TimeR2[s][geo.Urban]
		tgvR2 += res.TimeR2[s][geo.RuralTGV]
	}
	urbanR2 /= n
	tgvR2 /= n
	if tgvR2 >= urbanR2 {
		t.Errorf("TGV temporal r² %v should be below urban %v", tgvR2, urbanR2)
	}
}

// TestMemoizedAccessorsStable pins the memoization contract: repeated
// calls return the same cached data, and concurrent first access is
// safe.
func TestMemoizedAccessorsStable(t *testing.T) {
	a := core.New(dataset(t))
	var wg sync.WaitGroup
	vecs := make([][][]float64, 8)
	for i := range vecs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vecs[i] = a.PerUserVectors(services.DL)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(vecs); i++ {
		if &vecs[i][0] != &vecs[0][0] {
			t.Fatal("concurrent PerUserVectors returned distinct caches")
		}
	}
	c1, _, err := a.PeakCalendars(services.DL)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := a.PeakCalendars(services.DL)
	if err != nil {
		t.Fatal(err)
	}
	if &c1[0] != &c2[0] {
		t.Error("PeakCalendars recomputed despite memoization")
	}
}
