// Package core implements the paper's analysis pipeline — the primary
// contribution being reproduced. Given a Dataset (synthetic here,
// probe-measured in the original study), it computes every statistic
// behind Figs. 2-11: service rank-size laws, top-20 rankings, peak
// calendars and intensities, the k-Shape cluster-quality sweep,
// spatial concentration and correlation, and the urbanization
// analysis.
package core

import (
	"fmt"
	"sort"

	"repro/internal/cvi"
	"repro/internal/geo"
	"repro/internal/kshape"
	"repro/internal/peaks"
	"repro/internal/services"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/timeseries"
)

// Analyzer runs the paper's computations over one dataset.
type Analyzer struct {
	DS *synth.Dataset
}

// New wraps a dataset.
func New(ds *synth.Dataset) *Analyzer { return &Analyzer{DS: ds} }

// --- Fig. 2: service ranking and Zipf fit ---------------------------

// Ranking is the rank-size analysis of the full service population.
type Ranking struct {
	// Volumes is the full volume vector sorted descending.
	Volumes []float64
	// Normalized is Volumes scaled so rank 1 equals 1 (the paper's
	// "normalized traffic" axis).
	Normalized []float64
	// HeadFit is the Zipf fit over the top half of the ranking, the
	// fit reported in Fig. 2 (-1.69 DL, -1.55 UL).
	HeadFit stats.ZipfFit
}

// ServiceRanking computes the Fig. 2 analysis for one direction.
func (a *Analyzer) ServiceRanking(dir services.Direction) (Ranking, error) {
	vols := a.DS.AllVolumes(dir)
	sort.Sort(sort.Reverse(sort.Float64Slice(vols)))
	fit, err := stats.FitZipf(vols, len(vols)/2)
	if err != nil {
		return Ranking{}, fmt.Errorf("core: ranking fit: %w", err)
	}
	norm := make([]float64, len(vols))
	if vols[0] > 0 {
		for i, v := range vols {
			norm[i] = v / vols[0]
		}
	}
	return Ranking{Volumes: vols, Normalized: norm, HeadFit: fit}, nil
}

// --- Fig. 3: top-20 ranking by direction ----------------------------

// RankedService is one bar of Fig. 3.
type RankedService struct {
	Name     string
	Category services.Category
	// Share of the total (named + tail) traffic in the direction.
	Share float64
}

// Top20 ranks the named services on their share of total traffic.
func (a *Analyzer) Top20(dir services.Direction) []RankedService {
	total := a.DS.TotalTraffic(dir)
	out := make([]RankedService, 0, len(a.DS.Catalog))
	for s := range a.DS.Catalog {
		out = append(out, RankedService{
			Name:     a.DS.Catalog[s].Name,
			Category: a.DS.Catalog[s].Category,
			Share:    a.DS.NationalTotal(dir, s) / total,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Share > out[j].Share })
	return out
}

// CategoryShare sums the share of a category in the direction.
func (a *Analyzer) CategoryShare(dir services.Direction, cat services.Category) float64 {
	var share float64
	for _, r := range a.Top20(dir) {
		if r.Category == cat {
			share += r.Share
		}
	}
	return share
}

// --- Fig. 4 + 6 + 7: peak analysis ----------------------------------

// ServiceCalendar pairs a service with its detected peak calendar.
type ServiceCalendar struct {
	Service  string
	Calendar peaks.Calendar
}

// PeakCalendars runs the smoothed z-score detector (paper parameters)
// over every national series and maps peaks onto topical times. It
// returns one calendar per service and the count of peaks that fell
// outside every topical window (empirically zero, as in the paper).
func (a *Analyzer) PeakCalendars(dir services.Direction) ([]ServiceCalendar, int, error) {
	out := make([]ServiceCalendar, 0, len(a.DS.Catalog))
	totalOutside := 0
	for s := range a.DS.Catalog {
		cal, outside, err := peaks.BuildCalendar(a.DS.National[dir][s], peaks.PaperParams())
		if err != nil {
			return nil, 0, fmt.Errorf("core: calendar for %s: %w", a.DS.Catalog[s].Name, err)
		}
		totalOutside += outside
		out = append(out, ServiceCalendar{Service: a.DS.Catalog[s].Name, Calendar: cal})
	}
	return out, totalOutside, nil
}

// DistinctCalendarCount returns how many distinct peak patterns the
// calendars exhibit; the paper's Fig. 6 observation is that (almost)
// every service is unique.
func DistinctCalendarCount(cals []ServiceCalendar) int {
	seen := map[[peaks.NumTopicalTimes]bool]bool{}
	for _, c := range cals {
		seen[c.Calendar.Present] = true
	}
	return len(seen)
}

// DetectOn exposes the raw detector output for one service (the
// Fig. 4 illustration): the series, the detector result and the
// extracted peaks.
func (a *Analyzer) DetectOn(dir services.Direction, name string) (*timeseries.Series, *peaks.Result, []peaks.Peak, error) {
	idx, err := a.DS.ServiceIndex(name)
	if err != nil {
		return nil, nil, nil, err
	}
	s := a.DS.National[dir][idx]
	res, err := peaks.Detect(s.Values, peaks.PaperParams())
	if err != nil {
		return nil, nil, nil, err
	}
	pks, err := peaks.ExtractPeaks(s.Values, res)
	if err != nil {
		return nil, nil, nil, err
	}
	return s, res, pks, nil
}

// --- Fig. 5: clustering sweep ----------------------------------------

// SweepPoint is the cluster-quality measurement at one k.
type SweepPoint struct {
	K      int
	Scores cvi.Scores
}

// ClusterSweep z-normalizes the 20 national series and runs k-Shape
// for every k in [kMin, kMax], scoring each clustering with all four
// validity indices under the shape-based distance. The paper sweeps
// k = 2..19 and finds no winner: quality degrades monotonically.
func (a *Analyzer) ClusterSweep(dir services.Direction, kMin, kMax int, seed uint64) ([]SweepPoint, error) {
	n := len(a.DS.Catalog)
	if kMin < 2 {
		return nil, fmt.Errorf("core: sweep kMin %d < 2", kMin)
	}
	if kMax >= n {
		return nil, fmt.Errorf("core: sweep kMax %d >= %d services", kMax, n)
	}
	series := make([][]float64, n)
	for s := 0; s < n; s++ {
		series[s] = timeseries.ZNormalize(a.DS.National[dir][s].Values)
	}
	var out []SweepPoint
	for k := kMin; k <= kMax; k++ {
		res, err := kshape.Cluster(series, k, kshape.Options{Seed: seed, ZNormalize: false})
		if err != nil {
			return nil, fmt.Errorf("core: k-shape k=%d: %w", k, err)
		}
		c := cvi.Clustering{Points: series, Assign: res.Assign, Centroids: res.Centroids, K: k}
		out = append(out, SweepPoint{K: k, Scores: cvi.AllScores(c, kshape.SBDDist)})
	}
	return out, nil
}

// --- Fig. 8: spatial concentration -----------------------------------

// Concentration is the Fig. 8 analysis for one service.
type Concentration struct {
	// TopShares maps a commune fraction to its share of total traffic
	// (e.g. 0.01 -> 0.55 means the top 1% of communes carry 55%).
	TopShares map[float64]float64
	// PerUser is the per-commune per-subscriber volume sample.
	PerUser []float64
	// CDF is the empirical distribution of PerUser.
	CDF *stats.ECDF
	// Gini summarizes the commune-volume concentration.
	Gini float64
}

// SpatialConcentration computes Fig. 8 for one service.
func (a *Analyzer) SpatialConcentration(dir services.Direction, name string) (Concentration, error) {
	idx, err := a.DS.ServiceIndex(name)
	if err != nil {
		return Concentration{}, err
	}
	spatial := a.DS.Spatial[dir][idx]
	shares, err := stats.LorenzCurve(spatial, []float64{0.01, 0.05, 0.10, 0.50, 1})
	if err != nil {
		return Concentration{}, err
	}
	gini, err := stats.Gini(spatial)
	if err != nil {
		return Concentration{}, err
	}
	perUser := a.DS.PerUser(dir, idx)
	cdf, err := stats.NewECDF(perUser)
	if err != nil {
		return Concentration{}, err
	}
	return Concentration{TopShares: shares, PerUser: perUser, CDF: cdf, Gini: gini}, nil
}

// --- Fig. 10: pairwise spatial correlation ---------------------------

// SpatialCorrelation is the Fig. 10 analysis for one direction.
type SpatialCorrelation struct {
	// Names indexes the matrix.
	Names []string
	// R2 is the symmetric pairwise coefficient-of-determination matrix
	// between per-user commune vectors (diagonal = 1).
	R2 [][]float64
	// Pairs lists the upper-triangle values (the Fig. 10 CDF sample).
	Pairs []float64
	// Mean is the average pairwise r² (paper: 0.60 DL, 0.53 UL).
	Mean float64
	// ServiceMean[i] is the mean r² of service i against all others;
	// Netflix and iCloud sit lowest (the outlier rows).
	ServiceMean []float64
	// MeanSpearman is the average pairwise squared Spearman rank
	// correlation — the robustness companion: per-commune volumes are
	// heavy-tailed, so a moment-based r² could in principle be carried
	// by a handful of metropolises. Agreement between the two means
	// shows the spatial similarity is not an outlier artefact.
	MeanSpearman float64
}

// SpatialCorrelationAnalysis computes Fig. 10 for one direction.
func (a *Analyzer) SpatialCorrelationAnalysis(dir services.Direction) (SpatialCorrelation, error) {
	n := len(a.DS.Catalog)
	perUser := make([][]float64, n)
	names := make([]string, n)
	for s := 0; s < n; s++ {
		perUser[s] = a.DS.PerUser(dir, s)
		names[s] = a.DS.Catalog[s].Name
	}
	r2 := make([][]float64, n)
	for i := range r2 {
		r2[i] = make([]float64, n)
		r2[i][i] = 1
	}
	// Precompute rank transforms once per service for the Spearman
	// robustness check.
	rankOf := make([][]float64, n)
	for s := 0; s < n; s++ {
		r, err := stats.Ranks(perUser[s])
		if err != nil {
			return SpatialCorrelation{}, fmt.Errorf("core: ranks(%s): %w", names[s], err)
		}
		rankOf[s] = r
	}
	var pairs []float64
	var sum, sumSpear float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v, err := stats.R2(perUser[i], perUser[j])
			if err != nil {
				return SpatialCorrelation{}, fmt.Errorf("core: r2(%s, %s): %w", names[i], names[j], err)
			}
			r2[i][j] = v
			r2[j][i] = v
			pairs = append(pairs, v)
			sum += v
			if rho, err := stats.Pearson(rankOf[i], rankOf[j]); err == nil {
				sumSpear += rho * rho
			}
		}
	}
	svcMean := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			if i != j {
				s += r2[i][j]
			}
		}
		svcMean[i] = s / float64(n-1)
	}
	return SpatialCorrelation{
		Names: names, R2: r2, Pairs: pairs,
		Mean:         sum / float64(len(pairs)),
		ServiceMean:  svcMean,
		MeanSpearman: sumSpear / float64(len(pairs)),
	}, nil
}

// --- Fig. 11: urbanization analysis ----------------------------------

// UrbanizationResult is the Fig. 11 analysis for one direction.
type UrbanizationResult struct {
	Names []string
	// Slopes[s][u] is the through-origin regression slope of the
	// per-user series of class u against the urban one (Fig. 11 top);
	// Slopes[s][geo.Urban] is 1 by construction.
	Slopes [][geo.NumUrbanization]float64
	// TimeR2[s][u] is the mean r² between class u's series of service
	// s and the other classes' series (Fig. 11 bottom).
	TimeR2 [][geo.NumUrbanization]float64
}

// UrbanizationAnalysis computes Fig. 11 for one direction.
func (a *Analyzer) UrbanizationAnalysis(dir services.Direction) (UrbanizationResult, error) {
	n := len(a.DS.Catalog)
	res := UrbanizationResult{
		Names:  make([]string, n),
		Slopes: make([][geo.NumUrbanization]float64, n),
		TimeR2: make([][geo.NumUrbanization]float64, n),
	}
	for s := 0; s < n; s++ {
		res.Names[s] = a.DS.Catalog[s].Name
		var perUser [geo.NumUrbanization]*timeseries.Series
		for u := 0; u < geo.NumUrbanization; u++ {
			perUser[u] = a.DS.GroupPerUser(dir, s, geo.Urbanization(u))
		}
		urban := perUser[geo.Urban].Values
		for u := 0; u < geo.NumUrbanization; u++ {
			slope, err := stats.SlopeThroughOrigin(urban, perUser[u].Values)
			if err != nil {
				return res, fmt.Errorf("core: slope %s/%v: %w", res.Names[s], geo.Urbanization(u), err)
			}
			res.Slopes[s][u] = slope
			var sum float64
			cnt := 0
			for v := 0; v < geo.NumUrbanization; v++ {
				if v == u {
					continue
				}
				r2, err := stats.R2(perUser[u].Values, perUser[v].Values)
				if err != nil {
					return res, fmt.Errorf("core: time r2 %s %v/%v: %w",
						res.Names[s], geo.Urbanization(u), geo.Urbanization(v), err)
				}
				sum += r2
				cnt++
			}
			res.TimeR2[s][u] = sum / float64(cnt)
		}
	}
	return res, nil
}
