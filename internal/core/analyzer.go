// Package core implements the paper's analysis pipeline — the primary
// contribution being reproduced. Given a Dataset (synthetic or
// probe-measured; see the Dataset interface), it computes every
// statistic behind Figs. 2-11: service rank-size laws, top-20
// rankings, peak calendars and intensities, the k-Shape
// cluster-quality sweep, spatial concentration and correlation, and
// the urbanization analysis.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cvi"
	"repro/internal/geo"
	"repro/internal/kshape"
	"repro/internal/peaks"
	"repro/internal/services"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

// Analyzer runs the paper's computations over one dataset. It
// memoizes the expensive intermediates shared by several figures —
// per-user commune vectors, z-normalized national series, the full
// service ranking and the peak calendars — so an experiment engine
// running many figures over one environment computes each exactly
// once. Each intermediate has its own per-direction memo slot, so
// concurrent runners building *different* intermediates never block
// each other. All methods are safe for concurrent use.
type Analyzer struct {
	DS Dataset

	perUser   [services.NumDirections]memo[[][]float64]
	znorm     [services.NumDirections]memo[[][]float64]
	ranking   [services.NumDirections]memo[[]RankedService]
	calendars [services.NumDirections]memo[calendarSet]
}

// memo is a single-flight cache slot: the first caller computes, all
// others (including concurrent ones) get the same value.
type memo[T any] struct {
	once sync.Once
	val  T
}

func (m *memo[T]) get(compute func() T) T {
	m.once.Do(func() { m.val = compute() })
	return m.val
}

type calendarSet struct {
	cals    []ServiceCalendar
	outside int
	err     error
}

// New wraps a dataset.
func New(ds Dataset) *Analyzer { return &Analyzer{DS: ds} }

// PerUserVectors returns the per-commune per-subscriber volume vector
// of every service (computed once per analyzer). The returned slices
// are shared; callers must not mutate them.
func (a *Analyzer) PerUserVectors(dir services.Direction) [][]float64 {
	return a.perUser[dir].get(func() [][]float64 {
		n := len(a.DS.Services())
		vecs := make([][]float64, n)
		for s := 0; s < n; s++ {
			vecs[s] = a.DS.PerUser(dir, s)
		}
		return vecs
	})
}

// PerUser returns the memoized per-user vector of one service. The
// returned slice is shared; callers must not mutate it.
func (a *Analyzer) PerUser(dir services.Direction, svc int) []float64 {
	return a.PerUserVectors(dir)[svc]
}

// zNormalized returns the z-normalized national series of every
// service (computed once per analyzer).
func (a *Analyzer) zNormalized(dir services.Direction) [][]float64 {
	return a.znorm[dir].get(func() [][]float64 {
		n := len(a.DS.Services())
		series := make([][]float64, n)
		for s := 0; s < n; s++ {
			series[s] = timeseries.ZNormalize(a.DS.NationalSeries(dir, s).Values)
		}
		return series
	})
}

// --- Fig. 2: service ranking and Zipf fit ---------------------------

// Ranking is the rank-size analysis of the full service population.
type Ranking struct {
	// Volumes is the full volume vector sorted descending.
	Volumes []float64
	// Normalized is Volumes scaled so rank 1 equals 1 (the paper's
	// "normalized traffic" axis).
	Normalized []float64
	// HeadFit is the Zipf fit over the top half of the ranking, the
	// fit reported in Fig. 2 (-1.69 DL, -1.55 UL).
	HeadFit stats.ZipfFit
}

// ServiceRanking computes the Fig. 2 analysis for one direction.
func (a *Analyzer) ServiceRanking(dir services.Direction) (Ranking, error) {
	vols := a.DS.AllVolumes(dir)
	sort.Sort(sort.Reverse(sort.Float64Slice(vols)))
	fit, err := stats.FitZipf(vols, len(vols)/2)
	if err != nil {
		return Ranking{}, fmt.Errorf("core: ranking fit: %w", err)
	}
	norm := make([]float64, len(vols))
	if vols[0] > 0 {
		for i, v := range vols {
			norm[i] = v / vols[0]
		}
	}
	return Ranking{Volumes: vols, Normalized: norm, HeadFit: fit}, nil
}

// --- Fig. 3: top-20 ranking by direction ----------------------------

// RankedService is one bar of Fig. 3.
type RankedService struct {
	Name     string
	Category services.Category
	// Share of the total (named + tail) traffic in the direction.
	Share float64
}

// rankedAll returns every named service sorted by share, computed
// once per analyzer and direction.
func (a *Analyzer) rankedAll(dir services.Direction) []RankedService {
	return a.ranking[dir].get(func() []RankedService {
		total := a.DS.TotalTraffic(dir)
		svcs := a.DS.Services()
		out := make([]RankedService, 0, len(svcs))
		for s := range svcs {
			share := 0.0
			if total > 0 {
				share = a.DS.NationalTotal(dir, s) / total
			}
			out = append(out, RankedService{
				Name:     svcs[s].Name,
				Category: svcs[s].Category,
				Share:    share,
			})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Share > out[j].Share })
		return out
	})
}

// Top20 ranks the named services on their share of total traffic and
// returns at most the 20 largest (all of them when the catalogue is
// smaller, as measured datasets can be).
func (a *Analyzer) Top20(dir services.Direction) []RankedService {
	ranked := a.rankedAll(dir)
	n := min(20, len(ranked))
	return append([]RankedService(nil), ranked[:n]...)
}

// CategoryShare sums the share of a category across all named
// services in the direction. It reuses the memoized ranking rather
// than recomputing it per category.
func (a *Analyzer) CategoryShare(dir services.Direction, cat services.Category) float64 {
	var share float64
	for _, r := range a.rankedAll(dir) {
		if r.Category == cat {
			share += r.Share
		}
	}
	return share
}

// --- Fig. 4 + 6 + 7: peak analysis ----------------------------------

// ServiceCalendar pairs a service with its detected peak calendar.
type ServiceCalendar struct {
	Service  string
	Calendar peaks.Calendar
}

// PeakCalendars runs the smoothed z-score detector (paper parameters)
// over every national series and maps peaks onto topical times. It
// returns one calendar per service and the count of peaks that fell
// outside every topical window (empirically zero, as in the paper).
// The calendars are computed once per analyzer and direction — the
// outcome, error included, is deterministic in the dataset and is
// cached; the returned slice is shared and must not be mutated.
func (a *Analyzer) PeakCalendars(dir services.Direction) ([]ServiceCalendar, int, error) {
	res := a.calendars[dir].get(func() calendarSet {
		svcs := a.DS.Services()
		out := make([]ServiceCalendar, 0, len(svcs))
		totalOutside := 0
		for s := range svcs {
			cal, outside, err := peaks.BuildCalendar(a.DS.NationalSeries(dir, s), peaks.PaperParams())
			if err != nil {
				return calendarSet{err: fmt.Errorf("core: calendar for %s: %w", svcs[s].Name, err)}
			}
			totalOutside += outside
			out = append(out, ServiceCalendar{Service: svcs[s].Name, Calendar: cal})
		}
		return calendarSet{cals: out, outside: totalOutside}
	})
	return res.cals, res.outside, res.err
}

// DistinctCalendarCount returns how many distinct peak patterns the
// calendars exhibit; the paper's Fig. 6 observation is that (almost)
// every service is unique.
func DistinctCalendarCount(cals []ServiceCalendar) int {
	seen := map[[peaks.NumTopicalTimes]bool]bool{}
	for _, c := range cals {
		seen[c.Calendar.Present] = true
	}
	return len(seen)
}

// DetectOn exposes the raw detector output for one service (the
// Fig. 4 illustration): the series, the detector result and the
// extracted peaks.
func (a *Analyzer) DetectOn(dir services.Direction, name string) (*timeseries.Series, *peaks.Result, []peaks.Peak, error) {
	idx, err := a.DS.ServiceIndex(name)
	if err != nil {
		return nil, nil, nil, err
	}
	s := a.DS.NationalSeries(dir, idx)
	res, err := peaks.Detect(s.Values, peaks.PaperParams())
	if err != nil {
		return nil, nil, nil, err
	}
	pks, err := peaks.ExtractPeaks(s.Values, res)
	if err != nil {
		return nil, nil, nil, err
	}
	return s, res, pks, nil
}

// --- Fig. 5: clustering sweep ----------------------------------------

// SweepPoint is the cluster-quality measurement at one k.
type SweepPoint struct {
	K      int
	Scores cvi.Scores
}

// ClusterSweep z-normalizes the national series and runs k-Shape for
// every k in [kMin, kMax], scoring each clustering with all four
// validity indices under the shape-based distance. The paper sweeps
// k = 2..19 and finds no winner: quality degrades monotonically.
func (a *Analyzer) ClusterSweep(dir services.Direction, kMin, kMax int, seed uint64) ([]SweepPoint, error) {
	n := len(a.DS.Services())
	if kMin < 2 {
		return nil, fmt.Errorf("core: sweep kMin %d < 2", kMin)
	}
	if kMax >= n {
		return nil, fmt.Errorf("core: sweep kMax %d >= %d services", kMax, n)
	}
	series := a.zNormalized(dir)
	var out []SweepPoint
	for k := kMin; k <= kMax; k++ {
		res, err := kshape.Cluster(series, k, kshape.Options{Seed: seed, ZNormalize: false})
		if err != nil {
			return nil, fmt.Errorf("core: k-shape k=%d: %w", k, err)
		}
		c := cvi.Clustering{Points: series, Assign: res.Assign, Centroids: res.Centroids, K: k}
		out = append(out, SweepPoint{K: k, Scores: cvi.AllScores(c, kshape.SBDDist)})
	}
	return out, nil
}

// --- Fig. 8: spatial concentration -----------------------------------

// Concentration is the Fig. 8 analysis for one service.
type Concentration struct {
	// TopShares maps a commune fraction to its share of total traffic
	// (e.g. 0.01 -> 0.55 means the top 1% of communes carry 55%).
	TopShares map[float64]float64
	// PerUser is the per-commune per-subscriber volume sample.
	PerUser []float64
	// CDF is the empirical distribution of PerUser.
	CDF *stats.ECDF
	// Gini summarizes the commune-volume concentration.
	Gini float64
}

// SpatialConcentration computes Fig. 8 for one service.
func (a *Analyzer) SpatialConcentration(dir services.Direction, name string) (Concentration, error) {
	idx, err := a.DS.ServiceIndex(name)
	if err != nil {
		return Concentration{}, err
	}
	spatial := a.DS.SpatialVolumes(dir, idx)
	shares, err := stats.LorenzCurve(spatial, []float64{0.01, 0.05, 0.10, 0.50, 1})
	if err != nil {
		return Concentration{}, err
	}
	gini, err := stats.Gini(spatial)
	if err != nil {
		return Concentration{}, err
	}
	perUser := a.PerUser(dir, idx)
	cdf, err := stats.NewECDF(perUser)
	if err != nil {
		return Concentration{}, err
	}
	return Concentration{TopShares: shares, PerUser: perUser, CDF: cdf, Gini: gini}, nil
}

// r2Tolerant returns the coefficient of determination, treating
// statistically degenerate samples (constant vectors — dormant
// classes or barely observed services in sparse measured datasets) as
// zero correlation. Length mismatches and too-small samples are
// programming errors and still propagate.
func r2Tolerant(x, y []float64) (float64, error) {
	v, err := stats.R2(x, y)
	if err == nil {
		return v, nil
	}
	if len(x) == len(y) && len(x) >= 2 {
		return 0, nil
	}
	return 0, err
}

// slopeTolerant returns the through-origin regression slope, treating
// an all-zero regressor (a class that saw no traffic for the service
// in a sparse measured dataset) as slope zero. Length mismatches and
// empty samples still propagate.
func slopeTolerant(x, y []float64) (float64, error) {
	v, err := stats.SlopeThroughOrigin(x, y)
	if err == nil {
		return v, nil
	}
	if len(x) == len(y) && len(x) > 0 {
		return 0, nil
	}
	return 0, err
}

// --- Fig. 10: pairwise spatial correlation ---------------------------

// SpatialCorrelation is the Fig. 10 analysis for one direction.
type SpatialCorrelation struct {
	// Names indexes the matrix.
	Names []string
	// R2 is the symmetric pairwise coefficient-of-determination matrix
	// between per-user commune vectors (diagonal = 1).
	R2 [][]float64
	// Pairs lists the upper-triangle values (the Fig. 10 CDF sample).
	Pairs []float64
	// Mean is the average pairwise r² (paper: 0.60 DL, 0.53 UL).
	Mean float64
	// ServiceMean[i] is the mean r² of service i against all others;
	// Netflix and iCloud sit lowest (the outlier rows).
	ServiceMean []float64
	// MeanSpearman is the average pairwise squared Spearman rank
	// correlation — the robustness companion: per-commune volumes are
	// heavy-tailed, so a moment-based r² could in principle be carried
	// by a handful of metropolises. Agreement between the two means
	// shows the spatial similarity is not an outlier artefact.
	MeanSpearman float64
}

// SpatialCorrelationAnalysis computes Fig. 10 for one direction.
func (a *Analyzer) SpatialCorrelationAnalysis(dir services.Direction) (SpatialCorrelation, error) {
	svcs := a.DS.Services()
	n := len(svcs)
	perUser := a.PerUserVectors(dir)
	names := make([]string, n)
	for s := 0; s < n; s++ {
		names[s] = svcs[s].Name
	}
	r2 := make([][]float64, n)
	for i := range r2 {
		r2[i] = make([]float64, n)
		r2[i][i] = 1
	}
	// Precompute rank transforms once per service for the Spearman
	// robustness check.
	rankOf := make([][]float64, n)
	for s := 0; s < n; s++ {
		r, err := stats.Ranks(perUser[s])
		if err != nil {
			return SpatialCorrelation{}, fmt.Errorf("core: ranks(%s): %w", names[s], err)
		}
		rankOf[s] = r
	}
	var pairs []float64
	var sum, sumSpear float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v, err := r2Tolerant(perUser[i], perUser[j])
			if err != nil {
				return SpatialCorrelation{}, fmt.Errorf("core: r2(%s, %s): %w", names[i], names[j], err)
			}
			r2[i][j] = v
			r2[j][i] = v
			pairs = append(pairs, v)
			sum += v
			if rho, err := stats.Pearson(rankOf[i], rankOf[j]); err == nil {
				sumSpear += rho * rho
			}
		}
	}
	svcMean := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			if i != j {
				s += r2[i][j]
			}
		}
		svcMean[i] = s / float64(n-1)
	}
	return SpatialCorrelation{
		Names: names, R2: r2, Pairs: pairs,
		Mean:         sum / float64(len(pairs)),
		ServiceMean:  svcMean,
		MeanSpearman: sumSpear / float64(len(pairs)),
	}, nil
}

// --- Fig. 11: urbanization analysis ----------------------------------

// UrbanizationResult is the Fig. 11 analysis for one direction.
type UrbanizationResult struct {
	Names []string
	// Slopes[s][u] is the through-origin regression slope of the
	// per-user series of class u against the urban one (Fig. 11 top);
	// Slopes[s][geo.Urban] is 1 by construction.
	Slopes [][geo.NumUrbanization]float64
	// TimeR2[s][u] is the mean r² between class u's series of service
	// s and the other classes' series (Fig. 11 bottom).
	TimeR2 [][geo.NumUrbanization]float64
}

// UrbanizationAnalysis computes Fig. 11 for one direction.
func (a *Analyzer) UrbanizationAnalysis(dir services.Direction) (UrbanizationResult, error) {
	svcs := a.DS.Services()
	n := len(svcs)
	res := UrbanizationResult{
		Names:  make([]string, n),
		Slopes: make([][geo.NumUrbanization]float64, n),
		TimeR2: make([][geo.NumUrbanization]float64, n),
	}
	for s := 0; s < n; s++ {
		res.Names[s] = svcs[s].Name
		var perUser [geo.NumUrbanization]*timeseries.Series
		for u := 0; u < geo.NumUrbanization; u++ {
			perUser[u] = a.DS.GroupPerUser(dir, s, geo.Urbanization(u))
		}
		urban := perUser[geo.Urban].Values
		for u := 0; u < geo.NumUrbanization; u++ {
			slope, err := slopeTolerant(urban, perUser[u].Values)
			if err != nil {
				return res, fmt.Errorf("core: slope %s/%v: %w", res.Names[s], geo.Urbanization(u), err)
			}
			res.Slopes[s][u] = slope
			var sum float64
			cnt := 0
			for v := 0; v < geo.NumUrbanization; v++ {
				if v == u {
					continue
				}
				r2, err := r2Tolerant(perUser[u].Values, perUser[v].Values)
				if err != nil {
					return res, fmt.Errorf("core: time r2 %s %v/%v: %w",
						res.Names[s], geo.Urbanization(u), geo.Urbanization(v), err)
				}
				sum += r2
				cnt++
			}
			res.TimeR2[s][u] = sum / float64(cnt)
		}
	}
	return res, nil
}
