package gtpsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/pkt"
	"repro/internal/services"
	"repro/internal/timeseries"
)

func testCountry(t *testing.T) *geo.Country {
	t.Helper()
	return geo.Generate(geo.SmallConfig())
}

func TestBuildCellsCoverageAndDensity(t *testing.T) {
	country := testCountry(t)
	reg := BuildCells(country, 1)
	perCommune := map[int]int{}
	for _, c := range reg.Cells {
		perCommune[c.Commune]++
	}
	if len(perCommune) != len(country.Communes) {
		t.Fatalf("covered %d/%d communes", len(perCommune), len(country.Communes))
	}
	// Densest commune hosts more cells than the median one.
	densest, most := 0, 0
	for i := range country.Communes {
		if country.Communes[i].Subscribers > country.Communes[densest].Subscribers {
			densest = i
		}
	}
	most = perCommune[densest]
	if most < 2 {
		t.Errorf("densest commune has %d cells, want several", most)
	}
	// IDs are unique and resolvable.
	seen := map[uint32]bool{}
	for _, c := range reg.Cells {
		if seen[c.ID] {
			t.Fatalf("duplicate cell id %d", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestRunStatsConsistency(t *testing.T) {
	country := testCountry(t)
	cfg := DefaultConfig()
	cfg.Sessions = 300
	sim, err := New(country, services.Catalog(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames, stats := sim.Run()
	if stats.Sessions != 300 {
		t.Errorf("sessions = %d", stats.Sessions)
	}
	if stats.Frames != len(frames) {
		t.Errorf("frames = %d vs %d", stats.Frames, len(frames))
	}
	// Frames sorted by time.
	for i := 1; i < len(frames); i++ {
		if frames[i].Time.Before(frames[i-1].Time) {
			t.Fatal("frames not time-ordered")
		}
	}
	// All frames within the window (sessions may outlive it slightly).
	if frames[0].Time.Before(cfg.Start) {
		t.Error("frame before window start")
	}
	if stats.BytesDL <= 0 || stats.BytesUL <= 0 {
		t.Error("no traffic generated")
	}
	// UL is a small fraction of DL (per-service ratios applied).
	if stats.BytesUL > stats.BytesDL/5 {
		t.Errorf("UL %.3g suspiciously high vs DL %.3g", stats.BytesUL, stats.BytesDL)
	}
	// Unknown share near the configured 12% of bytes.
	frac := stats.UnknownBytes / (stats.BytesDL + stats.BytesUL)
	if math.Abs(frac-cfg.UnclassifiableShare) > 0.06 {
		t.Errorf("unknown byte share = %.3f, want ≈ %.2f", frac, cfg.UnclassifiableShare)
	}
}

func TestFramesDecodeCleanly(t *testing.T) {
	country := testCountry(t)
	cfg := DefaultConfig()
	cfg.Sessions = 100
	sim, err := New(country, services.Catalog(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames, _ := sim.Run()
	var p pkt.Parser
	var decoded []pkt.LayerType
	for i, f := range frames {
		var err error
		decoded, err = p.Decode(f.Data, decoded)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(decoded) < 3 {
			t.Fatalf("frame %d: only %d layers", i, len(decoded))
		}
	}
}

func TestSessionStartTimesFollowProfiles(t *testing.T) {
	country := testCountry(t)
	cfg := DefaultConfig()
	cfg.Sessions = 4000
	sim, err := New(country, services.Catalog(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames, _ := sim.Run()
	// Bucket control-plane Create messages per hour of day; night hours
	// must be much quieter than midday hours.
	hourly := make([]int, 24)
	var p pkt.Parser
	var decoded []pkt.LayerType
	for _, f := range frames {
		decoded, _ = p.Decode(f.Data, decoded)
		last := decoded[len(decoded)-1]
		isCreate := (last == pkt.LayerTypeGTPv2C && p.GTPv2C.MessageType == pkt.GTPv2MsgCreateSessionRequest && p.GTPv2C.HasULI) ||
			(last == pkt.LayerTypeGTPv1C && p.GTPv1C.MessageType == pkt.GTPv1MsgCreatePDPRequest && p.GTPv1C.HasULI)
		if isCreate {
			hourly[f.Time.Hour()]++
		}
	}
	night := hourly[2] + hourly[3] + hourly[4]
	midday := hourly[12] + hourly[13] + hourly[14]
	if night*3 > midday {
		t.Errorf("night sessions %d vs midday %d: diurnal pattern missing", night, midday)
	}
}

func TestULIErrorScalesWithSigma(t *testing.T) {
	country := testCountry(t)
	catalog := services.Catalog()
	run := func(sigma float64) float64 {
		cfg := DefaultConfig()
		cfg.Sessions = 500
		cfg.ULISigmaKm = sigma
		sim, err := New(country, catalog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, stats := sim.Run()
		return stats.MedianULIError()
	}
	small := run(0.5)
	large := run(5)
	if small >= large {
		t.Errorf("median error did not grow with sigma: %.2f vs %.2f", small, large)
	}
}

func TestConfigWindowRespected(t *testing.T) {
	country := testCountry(t)
	cfg := DefaultConfig()
	cfg.Sessions = 50
	cfg.Start = timeseries.StudyStart.Add(24 * time.Hour)
	cfg.Duration = 24 * time.Hour
	sim, err := New(country, services.Catalog(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames, _ := sim.Run()
	if len(frames) == 0 {
		t.Fatal("no frames")
	}
	// Note: start times come from the weekly profile, so the session
	// clock still spans the study week; the config window bounds only
	// the requested observation period. What must hold: valid frames.
	for _, f := range frames {
		if f.Data == nil {
			t.Fatal("nil frame data")
		}
	}
}
