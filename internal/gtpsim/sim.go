package gtpsim

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/capture"
	"repro/internal/dpi"
	"repro/internal/geo"
	"repro/internal/pkt"
	"repro/internal/services"
	"repro/internal/timeseries"
)

// Gateway addresses of the simulated core. The probe distinguishes
// uplink from downlink frames by which gateway sends them, exactly as
// a real Gn/S5 tap does.
var (
	// AccessGW is the SGSN/S-GW side (radio access network facing).
	AccessGW = [4]byte{172, 16, 0, 1}
	// CoreGW is the GGSN/P-GW side (internet facing).
	CoreGW = [4]byte{172, 16, 0, 2}
)

// Config controls a simulation run.
type Config struct {
	// Sessions is the number of IP sessions to simulate.
	Sessions int
	// Start and Duration bound the observation window (defaults: the
	// study week at 15-minute resolution).
	Start    time.Time
	Duration time.Duration
	// UnclassifiableShare routes this fraction of sessions to
	// unfingerprinted endpoints (no SNI, unknown prefix), reproducing
	// the paper's 12% unclassified traffic.
	UnclassifiableShare float64
	// HandoverProb is the chance a session performs a mid-life
	// handover that relocates its ULI to a neighbouring cell.
	HandoverProb float64
	// ULISigmaKm is the Gaussian scale of the localization error on
	// reported positions. 2.55 km makes the *median* 2D error ≈ 3 km,
	// the figure the paper cites for ULI accuracy.
	ULISigmaKm float64
	// MeanSessionKB is the mean downlink volume per session.
	MeanSessionKB float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultConfig returns test-scale defaults.
func DefaultConfig() Config {
	return Config{
		Sessions:            2000,
		Start:               timeseries.StudyStart,
		Duration:            timeseries.Week,
		UnclassifiableShare: 0.12,
		HandoverProb:        0.15,
		ULISigmaKm:          2.55,
		MeanSessionKB:       30,
		Seed:                1,
	}
}

// Frame is one captured packet with its observation timestamp. It is
// the capture-layer frame type: simulator output flows through
// capture.Source consumers without conversion.
type Frame = capture.Frame

// Stats summarizes ground truth of a run, used by tests to validate
// the probe against the generator.
type Stats struct {
	Frames          int
	Sessions        int
	BytesDL         float64
	BytesUL         float64
	UnknownBytes    float64 // bytes of unclassifiable sessions (DL+UL)
	SvcBytesDL      map[string]float64
	SvcBytesUL      map[string]float64
	CommuneBytesDL  map[int]float64 // keyed by *true* commune
	Handovers       int
	ULIErrorsKm     []float64 // displacement of every reported fix
	MisattributedKm float64
}

// MedianULIError returns the median localization error of the run.
func (s *Stats) MedianULIError() float64 {
	if len(s.ULIErrorsKm) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.ULIErrorsKm...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

// Simulator drives the session workload.
type Simulator struct {
	Country *geo.Country
	Catalog []services.Service
	Cells   *CellRegistry
	cfg     Config

	rng        *rand.Rand
	nextTEID   uint32
	nextSubIP  uint32
	svcCumul   []float64 // cumulative combined share for service draw
	comCumul   []float64 // cumulative subscriber share for commune draw
	profiles   []*timeseries.Series
	profCumul  [][]float64 // per-service cumulative profile for start times
	binLo      int         // session starts draw from profile bins
	binHi      int         // [binLo, binHi): the cfg observation window
	ulOverDL   []float64   // per-service UL/DL byte ratio
	seqCounter uint32

	// Per-session serialization state, reused across sessions so the
	// steady-state frame path allocates nothing: frames serialize into
	// one arena per session (invalidated when the next session starts —
	// the capture.Source ownership contract), with fixed scratch
	// buffers for the intermediate layers and a cache of the
	// deterministic per-service ClientHello bytes.
	arena    []byte
	refs     []frameRef
	frames   []Frame
	bufTCP   []byte
	bufInner []byte
	bufGTP   []byte
	bufSeg   []byte
	hellos   [][]byte
}

// frameRef records one frame's timestamp and its byte range in the
// session arena; Data slices are materialized only once the arena has
// reached its final size, so arena growth can never dangle them.
type frameRef struct {
	at         time.Time
	start, end int
}

// zeroPayload backs every synthetic data segment: payload content is
// zeros, so all emits share one read-only buffer.
var zeroPayload [2048]byte

// unclassifiableHello is the opaque, SNI-free handshake opener of
// unfingerprinted sessions. Read-only.
var unclassifiableHello = []byte{0x16, 0x03, 0x01, 0x00, 0x02, 0xff, 0xff}

// New builds a simulator over the given country and catalogue.
func New(country *geo.Country, catalog []services.Service, cfg Config) (*Simulator, error) {
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("gtpsim: non-positive session count %d", cfg.Sessions)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("gtpsim: non-positive duration %v", cfg.Duration)
	}
	if cfg.UnclassifiableShare < 0 || cfg.UnclassifiableShare > 0.9 {
		return nil, fmt.Errorf("gtpsim: unclassifiable share %v outside [0, 0.9]", cfg.UnclassifiableShare)
	}
	s := &Simulator{
		Country:  country,
		Catalog:  catalog,
		Cells:    BuildCells(country, cfg.Seed),
		cfg:      cfg,
		rng:      rand.New(rand.NewPCG(cfg.Seed, 0x73696d)), // "sim"
		nextTEID: 100,
	}
	// The observation window maps onto the weekly profile grid: session
	// start times draw only from bins wholly inside
	// [cfg.Start, cfg.Start+cfg.Duration). Out-of-window bins keep
	// their slots in the cumulative tables with zero weight, so a
	// full-week window reproduces the unwindowed draw sequence bit for
	// bit — windowing is opt-in, never a behavior change.
	const profStep = 15 * time.Minute
	gridBins := int(timeseries.Week / profStep)
	winStart, winEnd := cfg.Start, cfg.Start.Add(cfg.Duration)
	s.binLo = int((winStart.Sub(timeseries.StudyStart) + profStep - 1) / profStep)
	s.binHi = int(winEnd.Sub(timeseries.StudyStart) / profStep)
	s.binLo = max(s.binLo, 0)
	s.binHi = min(s.binHi, gridBins)
	if s.binLo >= s.binHi {
		return nil, fmt.Errorf("gtpsim: observation window [%v, %v) covers no whole bin of the study week",
			winStart, winEnd)
	}

	// Service draw: combined DL volume share.
	var cum float64
	for i := range catalog {
		cum += catalog[i].DLShare
		s.svcCumul = append(s.svcCumul, cum)
		prof := services.WeeklyProfile(&catalog[i], profStep, services.DL)
		s.profiles = append(s.profiles, prof)
		pc := make([]float64, prof.Len())
		var c float64
		for j, v := range prof.Values {
			if j >= s.binLo && j < s.binHi {
				c += v
			}
			pc[j] = c
		}
		if c <= 0 {
			return nil, fmt.Errorf("gtpsim: %s has no profile mass in the observation window [%v, %v)",
				catalog[i].Name, winStart, winEnd)
		}
		s.profCumul = append(s.profCumul, pc)
		ratio := catalog[i].ULShare * services.ULToDLRatio / catalog[i].DLShare
		s.ulOverDL = append(s.ulOverDL, ratio)
	}
	// Commune draw: subscriber-weighted.
	cum = 0
	for i := range country.Communes {
		cum += float64(country.Communes[i].Subscribers)
		s.comCumul = append(s.comCumul, cum)
	}
	return s, nil
}

func (s *Simulator) teid() uint32 {
	s.nextTEID++
	return s.nextTEID
}

func (s *Simulator) seq() uint32 {
	s.seqCounter++
	return s.seqCounter
}

// drawIndex picks an index from a cumulative weight table.
func (s *Simulator) drawIndex(cumul []float64) int {
	x := s.rng.Float64() * cumul[len(cumul)-1]
	return sort.SearchFloat64s(cumul, x)
}

// Run simulates all sessions and returns the captured frames sorted by
// time, together with the ground-truth statistics. It is the
// materializing wrapper over Stream for consumers (tests, sorting)
// that need the whole capture at once; memory is O(total frames).
func (s *Simulator) Run() ([]Frame, *Stats) {
	st := s.Stream()
	frames, _ := capture.Collect(st) // a Stream only ever errors with io.EOF
	// The stable sort keeps each session's internal (already sorted)
	// frame order on timestamp ties, so a probe consuming this slice
	// attributes tied frames exactly like a streaming consumer.
	sort.SliceStable(frames, func(a, b int) bool { return frames[a].Time.Before(frames[b].Time) })
	return frames, st.Stats()
}

// Stream returns a capture.Source that generates the workload lazily,
// one session at a time: memory stays O(frames per session) — constant
// in the total frame count — so session counts are bounded by time,
// not RAM. Frames arrive time-ordered within each session but not
// globally; per-tunnel causality (Create before data, handover between
// the data frames it splits) is preserved, which is all the probe's
// attribution state depends on.
//
// Frame data is serialized into a per-session arena that is reused by
// the next session: per the capture.Source ownership contract, a
// frame's Data is valid only until Next generates the following
// session. Consumers that retain frames (capture.Collect, the
// pipeline router) copy.
//
// A Simulator is single-use: Run and Stream consume the same
// underlying random stream, so create a fresh Simulator per run.
func (s *Simulator) Stream() *Stream {
	return &Stream{
		sim: s,
		stats: &Stats{
			SvcBytesDL:     map[string]float64{},
			SvcBytesUL:     map[string]float64{},
			CommuneBytesDL: map[int]float64{},
		},
	}
}

// Stream is the incremental frame source of a simulation run.
type Stream struct {
	sim     *Simulator
	stats   *Stats
	pending []Frame
	next    int
	session int
}

// Next implements capture.Source: it returns the next frame of the
// workload, generating sessions on demand, and io.EOF after the last
// session's last frame.
func (st *Stream) Next() (Frame, error) {
	for st.next >= len(st.pending) {
		if st.session >= st.sim.cfg.Sessions {
			st.stats.Sessions = st.sim.cfg.Sessions
			return Frame{}, io.EOF
		}
		st.pending = st.sim.session(st.stats)
		st.next = 0
		st.session++
		st.stats.Frames += len(st.pending)
	}
	f := st.pending[st.next]
	st.next++
	return f, nil
}

// Stats returns the ground-truth statistics accumulated so far. The
// totals are complete once Next has returned io.EOF.
func (st *Stream) Stats() *Stats { return st.stats }

// session generates one full session lifecycle. The returned slice
// and the frame data it references are owned by the simulator and
// reused by the next session call.
func (s *Simulator) session(stats *Stats) []Frame {
	s.arena = s.arena[:0]
	s.refs = s.refs[:0]

	communeIdx := s.drawIndex(s.comCumul)
	commune := &s.Country.Communes[communeIdx]
	svcIdx := s.drawIndex(s.svcCumul)
	svc := &s.Catalog[svcIdx]

	unclassifiable := s.rng.Float64() < s.cfg.UnclassifiableShare

	// Start time from the service's weekly profile, clamped into the
	// observation window (the draw can only leave it on the measure-
	// zero x == 0 edge of the cumulative search).
	pc := s.profCumul[svcIdx]
	binIdx := s.drawIndex(pc)
	binIdx = min(max(binIdx, s.binLo), s.binHi-1)
	prof := s.profiles[svcIdx]
	start := prof.TimeAt(binIdx).Add(time.Duration(s.rng.Float64() * float64(prof.Step)))
	sessionLife := time.Duration(1+s.rng.IntN(25)) * time.Minute

	// True and reported positions: the ULI error model.
	truePos := geo.Point{
		X: commune.Center.X + (s.rng.Float64()-0.5)*3,
		Y: commune.Center.Y + (s.rng.Float64()-0.5)*3,
	}
	reported := geo.Point{
		X: truePos.X + s.rng.NormFloat64()*s.cfg.ULISigmaKm,
		Y: truePos.Y + s.rng.NormFloat64()*s.cfg.ULISigmaKm,
	}
	cell := s.Cells.Nearest(reported)
	stats.ULIErrorsKm = append(stats.ULIErrorsKm, truePos.Dist(cell.Pos))

	is4G := commune.Coverage == geo.Tech4G
	ctrlTEID := s.teid()
	dataTEID := s.teid()
	subID := uint64(s.rng.Uint64())

	ueIP := s.ueIP()
	serverIP := s.serverIP(svcIdx, unclassifiable)

	uli := pkt.ULI{AreaCode: cell.AreaCode, CellID: cell.ID}
	s.controlFrames(start, is4G, false, ctrlTEID, dataTEID, subID, uli)

	// Traffic: DL-heavy with the per-service UL/DL ratio.
	dlBytes := s.cfg.MeanSessionKB * 1024 * math.Exp(s.rng.NormFloat64()*0.8-0.32)
	ulBytes := dlBytes * s.ulOverDL[svcIdx]
	if unclassifiable {
		stats.UnknownBytes += dlBytes + ulBytes
	} else {
		stats.SvcBytesDL[svc.Name] += dlBytes
		stats.SvcBytesUL[svc.Name] += ulBytes
	}
	stats.BytesDL += dlBytes
	stats.BytesUL += ulBytes
	stats.CommuneBytesDL[communeIdx] += dlBytes

	// Optional handover mid-session.
	handoverAt := time.Time{}
	if s.rng.Float64() < s.cfg.HandoverProb {
		handoverAt = start.Add(sessionLife / 2)
		stats.Handovers++
	}

	s.dataFrames(start, sessionLife, svcIdx, unclassifiable,
		dataTEID, ueIP, serverIP, dlBytes, ulBytes)

	if !handoverAt.IsZero() {
		// Move to another cell ~5 km away; may cross commune borders.
		newPos := geo.Point{X: truePos.X + 5, Y: truePos.Y}
		newCell := s.Cells.Nearest(newPos)
		s.controlFrames(handoverAt, is4G, true, ctrlTEID, dataTEID, subID,
			pkt.ULI{AreaCode: newCell.AreaCode, CellID: newCell.ID})
	}

	s.deleteFrames(start.Add(sessionLife), is4G, ctrlTEID)

	// Materialize the Frame views only now, once the arena has its
	// final backing array.
	s.frames = s.frames[:0]
	for _, ref := range s.refs {
		s.frames = append(s.frames, Frame{Time: ref.at, Data: s.arena[ref.start:ref.end:ref.end]})
	}
	// Emit the session's frames in observation order. Stable, so a data
	// frame and a handover update landing on the same instant keep
	// their causal order, and streaming consumers see exactly the
	// per-tunnel sequence the materialized (globally sorted) path sees.
	frames := s.frames
	sort.SliceStable(frames, func(a, b int) bool { return frames[a].Time.Before(frames[b].Time) })
	return frames
}

func (s *Simulator) ueIP() [4]byte {
	s.nextSubIP++
	v := s.nextSubIP
	return [4]byte{10, byte(v >> 16), byte(v >> 8), byte(v)}
}

func (s *Simulator) serverIP(svcIdx int, unclassifiable bool) [4]byte {
	if unclassifiable {
		return [4]byte{dpi.UnknownPrefix[0], dpi.UnknownPrefix[1], byte(s.rng.IntN(256)), byte(1 + s.rng.IntN(254))}
	}
	p := dpi.PrefixFor(svcIdx)
	return [4]byte{p[0], p[1], byte(s.rng.IntN(256)), byte(1 + s.rng.IntN(254))}
}

// controlFrames emits a Create (or Modify/Update, when modify is true)
// exchange carrying the ULI into the session arena.
func (s *Simulator) controlFrames(at time.Time, is4G, modify bool, ctrlTEID, dataTEID uint32, subID uint64, uli pkt.ULI) {
	if is4G {
		m := &pkt.GTPv2C{
			MessageType: pkt.GTPv2MsgCreateSessionRequest,
			TEID:        ctrlTEID, Sequence: s.seq(),
			DataTEID: dataTEID, HasDataTEID: true,
			SubscriberID: subID, HasSubscriber: true,
			Location: uli, HasULI: true,
		}
		if modify {
			m.MessageType = pkt.GTPv2MsgModifyBearerRequest
		}
		s.bufGTP = m.SerializeTo(s.bufGTP[:0], nil)
		s.wrap(at, AccessGW, CoreGW, pkt.PortGTPC, s.bufGTP)
		r := &pkt.GTPv2C{MessageType: m.MessageType + 1, TEID: ctrlTEID, Sequence: m.Sequence}
		s.bufGTP = r.SerializeTo(s.bufGTP[:0], nil)
		s.wrap(at.Add(20*time.Millisecond), CoreGW, AccessGW, pkt.PortGTPC, s.bufGTP)
	} else {
		m := &pkt.GTPv1C{
			MessageType: pkt.GTPv1MsgCreatePDPRequest,
			TEID:        ctrlTEID, Sequence: uint16(s.seq()),
			DataTEID: dataTEID, HasDataTEID: true,
			SubscriberID: subID, HasSubscriber: true,
			Location: uli, HasULI: true,
		}
		if modify {
			m.MessageType = pkt.GTPv1MsgUpdatePDPRequest
		}
		s.bufGTP = m.SerializeTo(s.bufGTP[:0], nil)
		s.wrap(at, AccessGW, CoreGW, pkt.PortGTPC, s.bufGTP)
		r := &pkt.GTPv1C{MessageType: m.MessageType + 1, TEID: ctrlTEID, Sequence: m.Sequence}
		s.bufGTP = r.SerializeTo(s.bufGTP[:0], nil)
		s.wrap(at.Add(20*time.Millisecond), CoreGW, AccessGW, pkt.PortGTPC, s.bufGTP)
	}
}

func (s *Simulator) deleteFrames(at time.Time, is4G bool, ctrlTEID uint32) {
	if is4G {
		m := &pkt.GTPv2C{MessageType: pkt.GTPv2MsgDeleteSessionRequest, TEID: ctrlTEID, Sequence: s.seq()}
		s.bufGTP = m.SerializeTo(s.bufGTP[:0], nil)
	} else {
		m := &pkt.GTPv1C{MessageType: pkt.GTPv1MsgDeletePDPRequest, TEID: ctrlTEID, Sequence: uint16(s.seq())}
		s.bufGTP = m.SerializeTo(s.bufGTP[:0], nil)
	}
	s.wrap(at, AccessGW, CoreGW, pkt.PortGTPC, s.bufGTP)
}

// helloFor returns the (deterministic) TLS ClientHello bytes of a
// catalogue service, built once and cached. Read-only for callers.
func (s *Simulator) helloFor(svcIdx int) []byte {
	if s.hellos == nil {
		s.hellos = make([][]byte, len(s.Catalog))
	}
	if s.hellos[svcIdx] == nil {
		s.hellos[svcIdx] = dpi.BuildClientHello(dpi.ServiceHost(s.Catalog[svcIdx].Name))
	}
	return s.hellos[svcIdx]
}

// dataFrames emits the tunnelled user traffic of a session into the
// session arena. The first uplink packet carries the TLS ClientHello
// with the service SNI (except for unclassifiable sessions).
func (s *Simulator) dataFrames(start time.Time, life time.Duration, svcIdx int, unclassifiable bool,
	dataTEID uint32, ueIP, serverIP [4]byte, dlBytes, ulBytes float64) {

	const mss = 1340
	uePort := uint16(40000 + s.rng.IntN(20000))
	serverPort := uint16(443)
	if !unclassifiable && s.Catalog[svcIdx].Name == "MMS" {
		serverPort = dpi.MMSPort
	}

	emit := func(at time.Time, srcIP, dstIP [4]byte, srcPort, dstPort uint16, payload []byte, uplink bool) {
		tcp := &pkt.TCP{SrcPort: srcPort, DstPort: dstPort, Flags: pkt.TCPAck, Window: 65535}
		tcp.SetChecksumIPs(srcIP, dstIP)
		s.bufTCP = tcp.SerializeTo(s.bufTCP[:0], payload)
		inner := &pkt.IPv4{TTL: 60, Protocol: pkt.IPProtoTCP, SrcIP: srcIP, DstIP: dstIP}
		s.bufInner = inner.SerializeTo(s.bufInner[:0], s.bufTCP)
		gtpu := &pkt.GTPv1U{MessageType: pkt.GTPMsgGPDU, TEID: dataTEID}
		s.bufGTP = gtpu.SerializeTo(s.bufGTP[:0], s.bufInner)
		outerSrc, outerDst := AccessGW, CoreGW
		if !uplink {
			outerSrc, outerDst = CoreGW, AccessGW
		}
		s.wrap(at, outerSrc, outerDst, pkt.PortGTPU, s.bufGTP)
	}

	// First uplink packet: the TLS handshake opener.
	hello := unclassifiableHello
	if !unclassifiable {
		hello = s.helloFor(svcIdx)
	}
	emit(start.Add(50*time.Millisecond), ueIP, serverIP, uePort, serverPort, hello, true)

	nDL := int(dlBytes/mss) + 1
	for i := 0; i < nDL; i++ {
		size := mss
		if rem := int(dlBytes) - i*mss; rem < mss {
			size = rem
		}
		if size <= 0 {
			break
		}
		at := start.Add(time.Duration(float64(life) * float64(i+1) / float64(nDL+1)))
		emit(at, serverIP, ueIP, serverPort, uePort, zeroPayload[:size], false)
	}
	// Uplink data rides in full segments (posts, uploads, ACK piggyback
	// is ignored): one packet per MSS, so small uplink volumes become a
	// single adequately sized packet rather than a spray of tiny ones.
	ulRemaining := int(ulBytes) - len(hello)
	nUL := ulRemaining/mss + 1
	for i := 0; i < nUL && ulRemaining > 0; i++ {
		size := mss
		if ulRemaining < mss {
			size = ulRemaining
		}
		at := start.Add(time.Duration(float64(life) * float64(i+1) / float64(nUL+1))).Add(3 * time.Millisecond)
		emit(at, ueIP, serverIP, uePort, serverPort, zeroPayload[:size], true)
		ulRemaining -= size
	}
}

// wrap encapsulates a GTP message in UDP/IP between the gateways,
// serializing the outer layers straight into the session arena and
// recording the frame's byte range.
func (s *Simulator) wrap(at time.Time, src, dst [4]byte, dstPort uint16, gtp []byte) {
	udp := &pkt.UDP{SrcPort: uint16(32000 + s.rng.IntN(1000)), DstPort: dstPort}
	s.bufSeg = udp.SerializeTo(s.bufSeg[:0], gtp)
	ip := &pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoUDP, SrcIP: src, DstIP: dst}
	start := len(s.arena)
	s.arena = ip.SerializeTo(s.arena, s.bufSeg)
	s.refs = append(s.refs, frameRef{at: at, start: start, end: len(s.arena)})
}
