// Package gtpsim simulates the mobile network of Fig. 1 at packet
// granularity: subscribers attach through 3G PDP Contexts (GTPv1-C)
// or 4G EPS Bearers (GTPv2-C), exchange tunnelled user traffic
// (GTPv1-U) with service endpoints, hand over between cells, and
// detach. Every event is emitted as a fully encoded frame exactly as
// a passive probe on the Gn or S5/S8 interface would capture it.
//
// The simulator substitutes for the live operator network the paper
// measures: at small scale the probe pipeline (internal/probe) decodes
// these frames back into per-service per-commune aggregates, which the
// tests then compare against the generating distributions.
package gtpsim

import (
	"math/rand/v2"

	"repro/internal/geo"
)

// Cell is one radio cell of the synthetic network.
type Cell struct {
	ID      uint32
	Commune int // index into Country.Communes
	// AreaCode is the Routing/Tracking Area the cell belongs to.
	AreaCode uint16
	Pos      geo.Point
}

// CellRegistry maps cell identities to communes — the operator-side
// knowledge the paper uses to aggregate ULI fixes at commune level.
type CellRegistry struct {
	Cells []Cell
	byID  map[uint32]int
}

// BuildCells constructs the radio plan: every commune hosts at least
// one cell, denser communes host more (one per ~15k subscribers, up
// to 12), placed with a small jitter around the commune centre.
// AreaCodes group blocks of neighbouring communes, mimicking
// RA/TA layouts.
func BuildCells(country *geo.Country, seed uint64) *CellRegistry {
	rng := rand.New(rand.NewPCG(seed, 0x63656c6c)) // "cell"
	reg := &CellRegistry{byID: make(map[uint32]int)}
	var id uint32 = 1
	for ci := range country.Communes {
		c := &country.Communes[ci]
		n := 1 + c.Subscribers/15000
		if n > 12 {
			n = 12
		}
		for k := 0; k < n; k++ {
			pos := geo.Point{
				X: c.Center.X + (rng.Float64()-0.5)*3,
				Y: c.Center.Y + (rng.Float64()-0.5)*3,
			}
			cell := Cell{
				ID:       id,
				Commune:  ci,
				AreaCode: uint16(ci / 64),
				Pos:      pos,
			}
			reg.byID[id] = len(reg.Cells)
			reg.Cells = append(reg.Cells, cell)
			id++
		}
	}
	return reg
}

// CommuneOf resolves a cell identity to its commune index.
func (r *CellRegistry) CommuneOf(cellID uint32) (int, bool) {
	idx, ok := r.byID[cellID]
	if !ok {
		return 0, false
	}
	return r.Cells[idx].Commune, true
}

// ByID returns the cell with the given identity.
func (r *CellRegistry) ByID(cellID uint32) (*Cell, bool) {
	idx, ok := r.byID[cellID]
	if !ok {
		return nil, false
	}
	return &r.Cells[idx], true
}

// Nearest returns the cell closest to p. Linear scan — the simulator
// runs at test scale where this is cheap; a production RAN database
// would use a spatial index.
func (r *CellRegistry) Nearest(p geo.Point) *Cell {
	var best *Cell
	bestDist := 0.0
	for i := range r.Cells {
		d := r.Cells[i].Pos.Dist(p)
		if best == nil || d < bestDist {
			best = &r.Cells[i]
			bestDist = d
		}
	}
	return best
}
