package services

import (
	"math"
	"time"

	"repro/internal/peaks"
	"repro/internal/timeseries"
)

// Direction distinguishes downlink from uplink traffic. The paper
// analyses the two directions separately throughout.
type Direction int

const (
	// DL is downlink (network to device).
	DL Direction = iota
	// UL is uplink (device to network).
	UL
)

// String returns the direction label.
func (d Direction) String() string {
	if d == UL {
		return "uplink"
	}
	return "downlink"
}

// NumDirections is the number of traffic directions.
const NumDirections = 2

// topicalCenter gives the hour-of-day centre of each topical time and
// whether it applies to weekend days.
var topicalCenter = [peaks.NumTopicalTimes]struct {
	hour    float64
	weekend bool
}{
	peaks.WeekendMidday:    {13, true},
	peaks.WeekendEvening:   {21, true},
	peaks.MorningCommute:   {8, false},
	peaks.MorningBreak:     {10, false},
	peaks.Midday:           {13, false},
	peaks.AfternoonCommute: {18, false},
	peaks.Evening:          {21, false},
}

// peakSigmaHours is the half-width of an activity bump. Narrow enough
// that adjacent topical times (8am vs 10am) stay separable under the
// detector's two-hour lag window, wide enough to span several
// 15-minute samples.
const peakSigmaHours = 0.35

// WeeklyProfile returns the service's normalized weekly demand profile
// at the given resolution: a deterministic, unit-mean series whose
// shape encodes the service's diurnal baseline and its topical-time
// bumps. Multiply by a volume to obtain traffic.
//
// Uplink profiles use slightly damped bump amplitudes: interactive
// posting follows the same rhythms, but background upload (sync,
// retries) flattens the extremes.
func WeeklyProfile(s *Service, step time.Duration, dir Direction) *timeseries.Series {
	out := timeseries.NewWeek(step)
	ampScale := 1.0
	if dir == UL {
		ampScale = 0.85
	}
	for i := range out.Values {
		t := out.TimeAt(i)
		out.Values[i] = profileAt(s, t, ampScale)
	}
	// Normalize to unit mean so volumes are independent of shape.
	mean := out.Mean()
	if mean > 0 {
		out.Scale(1 / mean)
	}
	return out
}

// profileAt evaluates the instantaneous demand density.
func profileAt(s *Service, t time.Time, ampScale float64) float64 {
	weekend := timeseries.IsWeekend(t)
	h := float64(t.Hour()) + float64(t.Minute())/60 + float64(t.Second())/3600

	base := baseline(s.NightFloor, h, weekend)

	bump := 0.0
	for tt, c := range topicalCenter {
		a := s.PeakAmp[tt]
		if a == 0 || c.weekend != weekend {
			continue
		}
		d := h - c.hour
		bump += a * ampScale * math.Exp(-0.5*(d/peakSigmaHours)*(d/peakSigmaHours))
	}
	return base * (1 + bump)
}

// baseline is the smooth diurnal floor-plateau curve: a logistic rise
// in the morning (later on weekends) and a logistic fall at night.
// Gradients are gentle enough that the smoothed z-score detector (3σ,
// 2h lag) does not fire on the baseline itself — only topical bumps
// raise signals, which is what makes Fig. 6's calendar clean.
func baseline(nightFloor, h float64, weekend bool) float64 {
	if nightFloor <= 0 {
		nightFloor = 0.05
	}
	// Two constraints pin the logistic scale: (a) the exponential tail
	// of the rise must grow by well under ~28% per 15-minute sample —
	// with measurement noise and the influence-feedback of the
	// detector, a convex onset near that ratio cascades into a long
	// false peak; (b) the rise must be nearly complete before the
	// first topical time of the day (8am weekdays, 11am weekends) so
	// the running std has settled when the first bump arrives. Gentle
	// scales with early midpoints satisfy both.
	riseMid, riseScale := 5.0, 1.3
	if weekend {
		riseMid, riseScale = 6.3, 1.45
	}
	rise := 1 / (1 + math.Exp(-(h-riseMid)/riseScale))
	fall := 1 / (1 + math.Exp((h-23.3)/0.9))
	day := rise * fall
	return nightFloor + (1-nightFloor)*day
}

// TailService is one of the minor services forming the bottom of the
// Fig. 2 rank-size distribution.
type TailService struct {
	Name             string
	DLShare, ULShare float64 // fractions of total nationwide volume
}

// TailCatalog generates the long tail of minor services. The full
// service population (20 named + tail) reproduces Fig. 2: the top half
// of services follows Zipf's law with exponents ≈ -1.69 (DL) and
// -1.55 (UL), and a sharp cut-off separates the bottom half, where
// volumes collapse by additional orders of magnitude.
//
// The tail receives the share of traffic the named catalogue leaves
// over (≈ 38% per direction), distributed so the *combined* ranking is
// Zipf-consistent in its top half.
func TailCatalog(total int, catalog []Service) []TailService {
	if total <= len(catalog) {
		return nil
	}
	nTail := total - len(catalog)
	dlLeft := 1 - TotalDLShare(catalog)
	ulLeft := 1 - TotalULShare(catalog)

	// The mid ranks (21..total/2) decay steeply enough that the OLS
	// rank-size fit over the whole top half lands on the paper's
	// exponents (-1.69 DL / -1.55 UL) despite the flatter named head;
	// below the half-way cut-off, volumes collapse by a further six
	// orders of magnitude (the Fig. 2 tail floor at 10^-10..10^-6).
	const (
		midDecayDL = 2.0
		midDecayUL = 1.9
	)
	half := total / 2
	dlW := make([]float64, nTail)
	ulW := make([]float64, nTail)
	var dlSum, ulSum float64
	for i := 0; i < nTail; i++ {
		rank := float64(len(catalog) + i + 1)
		if len(catalog)+i < half {
			dlW[i] = math.Pow(rank, -midDecayDL)
			ulW[i] = math.Pow(rank, -midDecayUL)
		} else {
			over := rank - float64(half)
			dlW[i] = math.Pow(rank, -midDecayDL) * math.Pow(10, -6*over/float64(total-half))
			ulW[i] = math.Pow(rank, -midDecayUL) * math.Pow(10, -6*over/float64(total-half))
		}
		dlSum += dlW[i]
		ulSum += ulW[i]
	}
	out := make([]TailService, nTail)
	for i := range out {
		out[i] = TailService{
			Name:    tailName(i),
			DLShare: dlW[i] / dlSum * dlLeft,
			ULShare: ulW[i] / ulSum * ulLeft,
		}
	}
	return out
}

func tailName(i int) string {
	return "minor-svc-" + string(rune('a'+i%26)) + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
