// Package services defines the mobile-service catalogue of the study:
// the 20 top services the paper analyses in depth (Fig. 3), plus a
// long tail of minor services used only for the rank-size analysis of
// Fig. 2.
//
// Every named service carries the behavioural profile that the paper's
// findings attribute to it: its traffic shares in each direction, the
// topical times at which its demand peaks (Fig. 6) with per-peak
// amplitudes (Fig. 7), and the spatial affinities behind the Fig. 9/10
// outliers (Netflix's 4G gating, iCloud's uniform uplink push).
package services

import (
	"fmt"

	"repro/internal/peaks"
)

// Category is the service category used for the Fig. 3 color coding.
type Category int

const (
	// Video covers video streaming platforms.
	Video Category = iota
	// Audio covers music/audio streaming.
	Audio
	// Social covers social networking feeds.
	Social
	// Messaging covers person-to-person communication.
	Messaging
	// Cloud covers cloud storage and device sync.
	Cloud
	// Store covers mobile application marketplaces.
	Store
	// Gaming covers mobile games.
	Gaming
	// Web covers generic browsing, portals and news.
	Web
	// AdultCat covers adult content platforms.
	AdultCat
)

// String returns the category label.
func (c Category) String() string {
	switch c {
	case Video:
		return "Video streaming"
	case Audio:
		return "Audio streaming"
	case Social:
		return "Social network"
	case Messaging:
		return "Messaging"
	case Cloud:
		return "Cloud"
	case Store:
		return "App store"
	case Gaming:
		return "Gaming"
	case Web:
		return "Web"
	case AdultCat:
		return "Adult"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Service describes one mobile service's calibrated behaviour.
type Service struct {
	// Name is the service label used across all figures.
	Name string
	// Category drives the Fig. 3 grouping.
	Category Category

	// DLShare and ULShare are the service's fraction of the *total*
	// nationwide downlink/uplink volume (the 20 services jointly cover
	// ≈ 60% of each direction, as reported in Section 3).
	DLShare, ULShare float64

	// PeakAmp holds the relative amplitude of the demand bump at each
	// topical time (0 = no peak there). Index by peaks.TopicalTime.
	// Amplitudes are fractions of the local baseline: 0.8 means the
	// bump lifts traffic 80% above the surrounding level.
	PeakAmp [peaks.NumTopicalTimes]float64

	// UrbanShift biases the service toward dense areas: per-user demand
	// is multiplied by (activity index)^UrbanShift on top of the common
	// spatial field. 0 = follows the common field exactly.
	UrbanShift float64
	// SpatialNoise is the per-commune lognormal σ of service-specific
	// demand variation; higher values decorrelate the service's map
	// from the others'.
	SpatialNoise float64
	// Requires4G suppresses the service where only 3G is available
	// (Netflix: high-quality long-form streaming is impractical on 3G).
	Requires4G bool
	// UniformSpatial flattens the dependence on the common spatial
	// field (iCloud: background device sync happens wherever iPhones
	// are, not where people are active).
	UniformSpatial bool
	// NightFloor is the fraction of daytime baseline remaining
	// overnight (background sync keeps cloud/mail traffic alive).
	NightFloor float64
}

// HasPeak reports whether the service peaks at the given topical time.
func (s *Service) HasPeak(tt peaks.TopicalTime) bool {
	return tt >= 0 && int(tt) < len(s.PeakAmp) && s.PeakAmp[tt] > 0
}

// PeakCount returns the number of topical times with a peak.
func (s *Service) PeakCount() int {
	n := 0
	for _, a := range s.PeakAmp {
		if a > 0 {
			n++
		}
	}
	return n
}

// Convenience aliases for the topical-time indices, keeping the
// amplitude tables below readable. Order: WM, WE, MC, MB, MD, AC, EV.
const (
	wm = peaks.WeekendMidday
	we = peaks.WeekendEvening
	mc = peaks.MorningCommute
	mb = peaks.MorningBreak
	md = peaks.Midday
	ac = peaks.AfternoonCommute
	ev = peaks.Evening
)

func amp(pairs map[peaks.TopicalTime]float64) [peaks.NumTopicalTimes]float64 {
	var out [peaks.NumTopicalTimes]float64
	for tt, a := range pairs {
		out[tt] = a
	}
	return out
}

// Catalog returns the 20-service catalogue. The table is calibrated so
// that:
//
//   - the five video services sum to 46% of total downlink (Section 3:
//     "video streaming services ... over 46% of the total traffic");
//   - the top-20 covers ≈ 62% of each direction, leaving the rest to
//     the long tail of ~480 minor services;
//   - social and messaging services hold the top-3 uplink shares;
//   - every service has a *distinct* set of peak topical times
//     (Fig. 6's key observation), with almost all peaking at weekday
//     midday, and the morning-break slot reserved for the
//     student-heavy services (SnapChat, Instagram, Facebook, Twitter);
//   - Netflix is 4G-gated and urban-shifted, iCloud spatially uniform
//     (the two Fig. 10 outliers).
func Catalog() []Service {
	return []Service{
		{
			Name: "YouTube", Category: Video,
			DLShare: 0.225, ULShare: 0.042,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{wm: 0.25, we: 0.30, md: 0.90, ac: 0.25, ev: 0.60}),
			UrbanShift: 0.05, SpatialNoise: 0.30, NightFloor: 0.10,
		},
		{
			Name: "iTunes", Category: Video,
			DLShare: 0.095, ULShare: 0.012,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{we: 0.20, mc: 0.70, md: 0.80, ev: 0.45}),
			UrbanShift: 0.10, SpatialNoise: 0.35, NightFloor: 0.12,
		},
		{
			Name: "Facebook Video", Category: Video,
			DLShare: 0.065, ULShare: 0.025,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{wm: 0.20, we: 0.25, mb: 0.30, md: 0.85, ac: 0.30}),
			UrbanShift: 0.02, SpatialNoise: 0.30, NightFloor: 0.08,
		},
		{
			Name: "Instagram video", Category: Video,
			DLShare: 0.045, ULShare: 0.022,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{we: 0.30, mb: 0.35, md: 0.75, ev: 0.55}),
			UrbanShift: 0.08, SpatialNoise: 0.32, NightFloor: 0.08,
		},
		{
			Name: "Netflix", Category: Video,
			DLShare: 0.03, ULShare: 0.009,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{we: 0.35, ev: 0.80}),
			UrbanShift: 0.35, SpatialNoise: 0.45, Requires4G: true, NightFloor: 0.15,
		},
		{
			Name: "Audio", Category: Audio,
			DLShare: 0.027, ULShare: 0.018,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{mc: 0.90, md: 0.70, ac: 0.35}),
			UrbanShift: 0.05, SpatialNoise: 0.30, NightFloor: 0.10,
		},
		{
			Name: "Facebook", Category: Social,
			DLShare: 0.025, ULShare: 0.085,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{wm: 0.20, mc: 0.38, mb: 0.55, md: 1.00, ac: 0.30, ev: 0.50}),
			UrbanShift: 0.00, SpatialNoise: 0.25, NightFloor: 0.08,
		},
		{
			Name: "Twitter", Category: Social,
			DLShare: 0.022, ULShare: 0.035,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{mc: 0.42, mb: 0.52, md: 0.85, ac: 0.25}),
			UrbanShift: 0.05, SpatialNoise: 0.28, NightFloor: 0.08,
		},
		{
			Name: "Google Services", Category: Web,
			DLShare: 0.02, ULShare: 0.03,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{wm: 0.15, mc: 0.55, md: 0.95, ac: 0.40}),
			UrbanShift: 0.00, SpatialNoise: 0.22, NightFloor: 0.15,
		},
		{
			Name: "Instagram", Category: Social,
			DLShare: 0.018, ULShare: 0.055,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{wm: 0.25, we: 0.30, mb: 0.45, md: 0.80, ev: 0.65}),
			UrbanShift: 0.08, SpatialNoise: 0.28, NightFloor: 0.08,
		},
		{
			Name: "News", Category: Web,
			DLShare: 0.016, ULShare: 0.016,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{mc: 1.10, md: 0.90}),
			UrbanShift: 0.06, SpatialNoise: 0.30, NightFloor: 0.06,
		},
		{
			Name: "Adult", Category: AdultCat,
			DLShare: 0.014, ULShare: 0.011,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{we: 0.25, md: 0.50, ev: 0.75}),
			UrbanShift: -0.02, SpatialNoise: 0.32, NightFloor: 0.25,
		},
		{
			Name: "Apple store", Category: Store,
			DLShare: 0.013, ULShare: 0.014,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{wm: 0.12, md: 0.70, ac: 0.20, ev: 0.40}),
			UrbanShift: 0.10, SpatialNoise: 0.30, NightFloor: 0.12,
		},
		{
			Name: "Google Play", Category: Store,
			DLShare: 0.012, ULShare: 0.013,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{we: 0.15, md: 0.65, ac: 0.25, ev: 0.35}),
			UrbanShift: 0.00, SpatialNoise: 0.30, NightFloor: 0.12,
		},
		{
			Name: "iCloud", Category: Cloud,
			DLShare: 0.011, ULShare: 0.05,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{mc: 0.50, md: 0.60, ev: 0.30}),
			UrbanShift: 0.00, SpatialNoise: 0.20, UniformSpatial: true, NightFloor: 0.45,
		},
		{
			Name: "SnapChat", Category: Social,
			DLShare: 0.01, ULShare: 0.105,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{wm: 0.30, we: 0.35, mb: 0.50, md: 0.90, ac: 0.35, ev: 0.70}),
			UrbanShift: 0.08, SpatialNoise: 0.28, NightFloor: 0.06,
		},
		{
			Name: "WhatsApp", Category: Messaging,
			DLShare: 0.0095, ULShare: 0.07,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{wm: 0.18, we: 0.22, mc: 0.45, md: 0.85, ac: 0.30, ev: 0.55}),
			UrbanShift: 0.00, SpatialNoise: 0.25, NightFloor: 0.08,
		},
		{
			Name: "Mail", Category: Messaging,
			DLShare: 0.009, ULShare: 0.02,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{mc: 0.75, md: 0.95, ac: 0.35, ev: 0.25}),
			UrbanShift: 0.04, SpatialNoise: 0.25, NightFloor: 0.20,
		},
		{
			Name: "MMS", Category: Messaging,
			DLShare: 0.0085, ULShare: 0.01,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{wm: 0.10, md: 0.55, ev: 0.25}),
			UrbanShift: -0.05, SpatialNoise: 0.30, NightFloor: 0.05,
		},
		{
			Name: "Pokemon Go", Category: Gaming,
			DLShare: 0.008, ULShare: 0.008,
			PeakAmp:    amp(map[peaks.TopicalTime]float64{wm: 0.20, we: 0.28, md: 0.45, ac: 0.40}),
			UrbanShift: 0.12, SpatialNoise: 0.35, NightFloor: 0.04,
		},
	}
}

// ByName indexes the catalogue; it returns nil when the service is
// unknown.
func ByName(catalog []Service, name string) *Service {
	for i := range catalog {
		if catalog[i].Name == name {
			return &catalog[i]
		}
	}
	return nil
}

// TotalDLShare and TotalULShare return the fraction of the nationwide
// traffic the catalogue covers (≈ 0.62 per direction; the remainder is
// the minor-service tail).
func TotalDLShare(catalog []Service) float64 {
	var t float64
	for i := range catalog {
		t += catalog[i].DLShare
	}
	return t
}

// TotalULShare returns the catalogue's uplink coverage.
func TotalULShare(catalog []Service) float64 {
	var t float64
	for i := range catalog {
		t += catalog[i].ULShare
	}
	return t
}

// ULToDLRatio is the nationwide uplink:downlink volume ratio. The paper
// notes uplink "accounts for less than one twentieth of the total
// network load"; 1/21 keeps the statement strictly true.
const ULToDLRatio = 1.0 / 21.0
