package services

import (
	"math"
	"testing"
	"time"

	"repro/internal/peaks"
	"repro/internal/timeseries"
)

func TestCatalogSize(t *testing.T) {
	c := Catalog()
	if len(c) != 20 {
		t.Fatalf("catalogue has %d services, want 20", len(c))
	}
	seen := map[string]bool{}
	for i := range c {
		if c[i].Name == "" {
			t.Errorf("service %d has empty name", i)
		}
		if seen[c[i].Name] {
			t.Errorf("duplicate service %q", c[i].Name)
		}
		seen[c[i].Name] = true
	}
}

func TestCatalogSharesSane(t *testing.T) {
	c := Catalog()
	dl := TotalDLShare(c)
	ul := TotalULShare(c)
	// Section 3: the selection covers "over 60%" of the overall traffic.
	if dl < 0.60 || dl > 0.70 {
		t.Errorf("total DL share = %v, want ≈ 0.62", dl)
	}
	if ul < 0.60 || ul > 0.70 {
		t.Errorf("total UL share = %v, want ≈ 0.63", ul)
	}
	for i := range c {
		if c[i].DLShare <= 0 || c[i].ULShare <= 0 {
			t.Errorf("%s has non-positive share", c[i].Name)
		}
	}
}

func TestVideoIs46PercentOfDownlink(t *testing.T) {
	c := Catalog()
	var video float64
	for i := range c {
		if c[i].Category == Video {
			video += c[i].DLShare
		}
	}
	if math.Abs(video-0.46) > 0.005 {
		t.Errorf("video DL share = %v, want 0.46", video)
	}
}

func TestDownlinkRankingOrder(t *testing.T) {
	// Fig. 3 (top): YouTube dominates, iTunes second.
	c := Catalog()
	for i := 1; i < len(c); i++ {
		if c[i].DLShare > c[i-1].DLShare {
			t.Errorf("catalogue not DL-ranked at %s > %s", c[i].Name, c[i-1].Name)
		}
	}
	if c[0].Name != "YouTube" || c[1].Name != "iTunes" {
		t.Errorf("top-2 DL = %s, %s", c[0].Name, c[1].Name)
	}
}

func TestUplinkTop3SocialMessaging(t *testing.T) {
	// Fig. 3 (bottom): social networks and messaging occupy the top
	// three uplink positions; SnapChat leads.
	c := Catalog()
	type ranked struct {
		name  string
		cat   Category
		share float64
	}
	rs := make([]ranked, len(c))
	for i := range c {
		rs[i] = ranked{c[i].Name, c[i].Category, c[i].ULShare}
	}
	for i := 0; i < 3; i++ {
		best := i
		for j := i + 1; j < len(rs); j++ {
			if rs[j].share > rs[best].share {
				best = j
			}
		}
		rs[i], rs[best] = rs[best], rs[i]
	}
	if rs[0].name != "SnapChat" {
		t.Errorf("top UL service = %s, want SnapChat", rs[0].name)
	}
	for i := 0; i < 3; i++ {
		if rs[i].cat != Social && rs[i].cat != Messaging {
			t.Errorf("UL rank %d is %s (%v), want social or messaging", i+1, rs[i].name, rs[i].cat)
		}
	}
}

func TestPeakPatternsAllDistinct(t *testing.T) {
	// Fig. 6's core claim: no two services share the same set of peak
	// topical times.
	c := Catalog()
	masks := map[int]string{}
	for i := range c {
		mask := 0
		for tt := 0; tt < peaks.NumTopicalTimes; tt++ {
			if c[i].PeakAmp[tt] > 0 {
				mask |= 1 << tt
			}
		}
		if prev, dup := masks[mask]; dup {
			t.Errorf("%s and %s share the same peak pattern %07b", prev, c[i].Name, mask)
		}
		masks[mask] = c[i].Name
	}
}

func TestAlmostAllServicesPeakAtMidday(t *testing.T) {
	c := Catalog()
	missing := 0
	for i := range c {
		if !c[i].HasPeak(peaks.Midday) {
			missing++
		}
	}
	// "almost all services show increased usage on midday of working
	// days": allow at most 1 exception (Netflix).
	if missing > 1 {
		t.Errorf("%d services lack a Midday peak", missing)
	}
}

func TestMorningBreakIsStudentServices(t *testing.T) {
	// The paper speculates morning-break peaks identify services
	// popular among students: SnapChat, Instagram, Facebook, Twitter.
	c := Catalog()
	wantSet := map[string]bool{
		"SnapChat": true, "Instagram": true, "Facebook": true, "Twitter": true,
		// their embedded video feeds inherit the habit
		"Facebook Video": true, "Instagram video": true,
	}
	for i := range c {
		has := c[i].HasPeak(peaks.MorningBreak)
		if has && !wantSet[c[i].Name] {
			t.Errorf("%s has a morning-break peak but is not a student service", c[i].Name)
		}
	}
	for _, name := range []string{"SnapChat", "Instagram", "Facebook", "Twitter"} {
		if s := ByName(c, name); s == nil || !s.HasPeak(peaks.MorningBreak) {
			t.Errorf("%s should have a morning-break peak", name)
		}
	}
}

func TestOutliersConfigured(t *testing.T) {
	c := Catalog()
	netflix := ByName(c, "Netflix")
	if netflix == nil || !netflix.Requires4G {
		t.Error("Netflix must require 4G")
	}
	if netflix.UrbanShift <= 0.2 {
		t.Errorf("Netflix urban shift = %v, want strongly urban", netflix.UrbanShift)
	}
	icloud := ByName(c, "iCloud")
	if icloud == nil || !icloud.UniformSpatial {
		t.Error("iCloud must be spatially uniform")
	}
	for i := range c {
		if c[i].Name != "Netflix" && c[i].Requires4G {
			t.Errorf("%s unexpectedly requires 4G", c[i].Name)
		}
		if c[i].Name != "iCloud" && c[i].UniformSpatial {
			t.Errorf("%s unexpectedly uniform", c[i].Name)
		}
	}
}

func TestByName(t *testing.T) {
	c := Catalog()
	if s := ByName(c, "Twitter"); s == nil || s.Category != Social {
		t.Error("ByName(Twitter) wrong")
	}
	if s := ByName(c, "NoSuchService"); s != nil {
		t.Error("ByName should return nil for unknown")
	}
}

func TestCategoryStrings(t *testing.T) {
	for _, cat := range []Category{Video, Audio, Social, Messaging, Cloud, Store, Gaming, Web, AdultCat} {
		if cat.String() == "" {
			t.Errorf("category %d has empty label", cat)
		}
	}
	if Category(99).String() == "" {
		t.Error("unknown category empty label")
	}
}

func TestDirectionString(t *testing.T) {
	if DL.String() != "downlink" || UL.String() != "uplink" {
		t.Error("direction labels wrong")
	}
}

func TestPeakCountAndHasPeak(t *testing.T) {
	c := Catalog()
	nf := ByName(c, "Netflix")
	if nf.PeakCount() != 2 {
		t.Errorf("Netflix peak count = %d, want 2", nf.PeakCount())
	}
	if nf.HasPeak(peaks.Midday) {
		t.Error("Netflix should not peak at weekday midday")
	}
	if nf.HasPeak(peaks.TopicalTime(-1)) || nf.HasPeak(peaks.TopicalTime(99)) {
		t.Error("out-of-range topical time should report no peak")
	}
}

func TestWeeklyProfileUnitMean(t *testing.T) {
	c := Catalog()
	for i := range c {
		p := WeeklyProfile(&c[i], timeseries.DefaultStep, DL)
		if p.Len() != 672 {
			t.Fatalf("%s profile has %d samples", c[i].Name, p.Len())
		}
		if math.Abs(p.Mean()-1) > 1e-9 {
			t.Errorf("%s profile mean = %v, want 1", c[i].Name, p.Mean())
		}
		for j, v := range p.Values {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("%s profile invalid at %d: %v", c[i].Name, j, v)
			}
		}
	}
}

func TestWeeklyProfileNightVsDay(t *testing.T) {
	c := Catalog()
	fb := ByName(c, "Facebook")
	p := WeeklyProfile(fb, timeseries.DefaultStep, DL)
	// Tuesday 4am should be far below Tuesday 2pm.
	night := p.Values[p.IndexOf(timeseries.StudyStart.Add(3*24*time.Hour+4*time.Hour))]
	day := p.Values[p.IndexOf(timeseries.StudyStart.Add(3*24*time.Hour+14*time.Hour))]
	if night >= day/2 {
		t.Errorf("night %v vs day %v: no diurnal contrast", night, day)
	}
}

func TestWeeklyProfilePeaksDetectable(t *testing.T) {
	// The calibration contract: applying the paper's own detector to
	// the clean profile must recover peaks only at the configured
	// topical times (Fig. 6 finds zero peaks outside the seven slots).
	c := Catalog()
	for i := range c {
		svc := &c[i]
		p := WeeklyProfile(svc, timeseries.DefaultStep, DL)
		cal, outside, err := peaks.BuildCalendar(p, peaks.PaperParams())
		if err != nil {
			t.Fatalf("%s: %v", svc.Name, err)
		}
		if outside > 0 {
			t.Errorf("%s: %d peaks outside topical windows", svc.Name, outside)
		}
		for tt := 0; tt < peaks.NumTopicalTimes; tt++ {
			if cal.Present[tt] && svc.PeakAmp[tt] == 0 {
				t.Errorf("%s: spurious peak at %v", svc.Name, peaks.TopicalTime(tt))
			}
		}
		// Every configured bump must be found: detected calendars must
		// equal configured patterns exactly, so Fig. 6's uniqueness of
		// *configured* patterns carries over to the *measured* ones.
		for tt := 0; tt < peaks.NumTopicalTimes; tt++ {
			if svc.PeakAmp[tt] > 0 && !cal.Present[tt] {
				t.Errorf("%s: configured %.2f peak at %v not detected",
					svc.Name, svc.PeakAmp[tt], peaks.TopicalTime(tt))
			}
		}
	}
}

func TestULProfileDampedButAligned(t *testing.T) {
	c := Catalog()
	fb := ByName(c, "Facebook")
	dl := WeeklyProfile(fb, timeseries.DefaultStep, DL)
	ul := WeeklyProfile(fb, timeseries.DefaultStep, UL)
	// Same rhythm: high correlation.
	var num, d1, d2 float64
	for i := range dl.Values {
		a := dl.Values[i] - 1
		b := ul.Values[i] - 1
		num += a * b
		d1 += a * a
		d2 += b * b
	}
	r := num / math.Sqrt(d1*d2)
	if r < 0.99 {
		t.Errorf("DL/UL profile correlation = %v", r)
	}
	// Damped extremes: UL max below DL max.
	dlMax, _ := dl.Max()
	ulMax, _ := ul.Max()
	if ulMax >= dlMax {
		t.Errorf("UL max %v not damped vs DL max %v", ulMax, dlMax)
	}
}

func TestTailCatalog(t *testing.T) {
	c := Catalog()
	tail := TailCatalog(500, c)
	if len(tail) != 480 {
		t.Fatalf("tail size = %d, want 480", len(tail))
	}
	var dl, ul float64
	for _, s := range tail {
		if s.DLShare < 0 || s.ULShare < 0 {
			t.Fatalf("negative share in tail: %+v", s)
		}
		dl += s.DLShare
		ul += s.ULShare
	}
	if math.Abs(dl+TotalDLShare(c)-1) > 1e-9 {
		t.Errorf("DL shares sum to %v, want 1", dl+TotalDLShare(c))
	}
	if math.Abs(ul+TotalULShare(c)-1) > 1e-9 {
		t.Errorf("UL shares sum to %v, want 1", ul+TotalULShare(c))
	}
	// Tail must decay monotonically and collapse at the bottom half.
	for i := 1; i < len(tail); i++ {
		if tail[i].DLShare > tail[i-1].DLShare {
			t.Errorf("tail not decreasing at %d", i)
		}
	}
	if tail[len(tail)-1].DLShare > tail[0].DLShare*1e-4 {
		t.Error("tail bottom does not collapse")
	}
	if TailCatalog(10, c) != nil {
		t.Error("tail smaller than catalogue should be nil")
	}
}

func TestULToDLRatioUnderOneTwentieth(t *testing.T) {
	if ULToDLRatio >= 1.0/20.0 {
		t.Errorf("UL:DL ratio %v not under 1/20", ULToDLRatio)
	}
}
