package services

import "fmt"

// ID is a dense service identifier: the index of a service name in a
// Names table. The packet plane works exclusively in IDs — the DPI
// classifier returns them, the probe's accumulators are ID-indexed
// slices, the rollup builder packs them into its cell keys — and names
// materialize only at the export boundary (measured datasets, engine
// JSON, snapshots). uint16 bounds the namespace at 65535 services,
// comfortably above the paper's ~500-service population.
type ID uint16

// NoID is the sentinel for "no service": the classifier returns it for
// unclassified traffic. It is deliberately the top of the ID range so
// a zero-valued Result cannot be mistaken for service 0.
const NoID ID = 0xffff

// Names is an immutable interning table mapping service names to dense
// IDs and back. Build one per catalogue (the classifier owns the
// canonical instance for a measurement run) and share it read-only:
// lookups never mutate, so a Names is safe for concurrent use.
type Names struct {
	list  []string
	index map[string]ID
}

// NewNames builds an interning table over the given name list; IDs are
// assigned in list order. Duplicate names or more than NoID entries
// panic — tables describe a fixed catalogue, not arbitrary input.
func NewNames(list []string) *Names {
	if len(list) >= int(NoID) {
		panic(fmt.Sprintf("services: %d names exceed the ID namespace", len(list)))
	}
	n := &Names{
		list:  append([]string(nil), list...),
		index: make(map[string]ID, len(list)),
	}
	for i, name := range n.list {
		if _, dup := n.index[name]; dup {
			panic(fmt.Sprintf("services: duplicate name %q", name))
		}
		n.index[name] = ID(i)
	}
	return n
}

// NamesOf builds the interning table of a catalogue, in catalogue
// order: ID i names catalog[i].
func NamesOf(catalog []Service) *Names {
	list := make([]string, len(catalog))
	for i := range catalog {
		list[i] = catalog[i].Name
	}
	return NewNames(list)
}

// DefaultNames returns the interning table of the default catalogue —
// the namespace snapshot reconstruction uses, matching the live
// classifier built over Catalog().
func DefaultNames() *Names { return NamesOf(Catalog()) }

// Len returns the number of interned names.
func (n *Names) Len() int { return len(n.list) }

// Name returns the name of id; it panics on an out-of-range id (NoID
// included — callers must gate on NoID before resolving).
func (n *Names) Name(id ID) string { return n.list[id] }

// Lookup returns the ID of name.
func (n *Names) Lookup(name string) (ID, bool) {
	id, ok := n.index[name]
	return id, ok
}

// All returns the interned names in ID order. The slice is shared:
// callers must not mutate it.
func (n *Names) All() []string { return n.list }
