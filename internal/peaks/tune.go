package peaks

import (
	"fmt"

	"repro/internal/timeseries"
)

// TuneResult records the quality of one detector parameterization over
// a series collection — the machinery behind the paper's statement
// that threshold/lag/influence were set "upon an extensive tuning
// process".
type TuneResult struct {
	Params Params
	// Topical counts detected peaks that fall inside a topical window.
	Topical int
	// Outside counts detected peaks outside every window (false alarms
	// under the paper's model that all real peaks are topical).
	Outside int
	// Series is the number of series the parameters were scored on.
	Series int
}

// Score orders tune results: topical peaks reward, outside peaks
// penalize heavily (a detector that fires anywhere is useless for the
// Fig. 6 calendar).
func (r TuneResult) Score() int { return r.Topical - 5*r.Outside }

// Tune evaluates every candidate parameterization on the given weekly
// series and returns all results plus the best one. Candidates that
// fail validation for the series length are skipped; an error is
// returned only if no candidate is usable.
func Tune(series []*timeseries.Series, candidates []Params) ([]TuneResult, TuneResult, error) {
	if len(series) == 0 || len(candidates) == 0 {
		return nil, TuneResult{}, fmt.Errorf("peaks: Tune needs series and candidates")
	}
	var results []TuneResult
	for _, p := range candidates {
		res := TuneResult{Params: p}
		usable := true
		for _, s := range series {
			cal, outside, err := BuildCalendar(s, p)
			if err != nil {
				usable = false
				break
			}
			res.Outside += outside
			res.Topical += cal.Count()
			res.Series++
		}
		if usable {
			results = append(results, res)
		}
	}
	if len(results) == 0 {
		return nil, TuneResult{}, fmt.Errorf("peaks: no usable candidate for series of length %d", series[0].Len())
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.Score() > best.Score() {
			best = r
		}
	}
	return results, best, nil
}

// DefaultGrid returns the candidate grid around the paper's chosen
// parameters: thresholds 2-4 z-scores, lags 1-3 hours (at 15-minute
// sampling) and influences 0.2-0.6.
func DefaultGrid() []Params {
	var grid []Params
	for _, th := range []float64{2, 2.5, 3, 3.5, 4} {
		for _, lag := range []int{4, 8, 12} {
			for _, inf := range []float64{0.2, 0.4, 0.6} {
				grid = append(grid, Params{Lag: lag, Threshold: th, Influence: inf})
			}
		}
	}
	return grid
}
