package peaks

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// gistSignal is the reference input from the smoothed z-score gist the
// paper cites; the expected output below was computed with the original
// R/Python implementation (lag=30 is too long here, so we use the
// widely published lag=5 variant of the example's head).
func TestDetectFlatSignalNoPeaks(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = 10
	}
	res, err := Detect(values, Params{Lag: 8, Threshold: 3, Influence: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Signals {
		if s != 0 {
			t.Errorf("flat signal flagged at %d", i)
		}
	}
}

func TestDetectSpike(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	values := make([]float64, 200)
	for i := range values {
		values[i] = 100 + rng.NormFloat64()
	}
	// A clear spike well above the noise floor.
	for i := 120; i < 125; i++ {
		values[i] = 150
	}
	pks, err := DetectPeaks(values, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pk := range pks {
		if pk.Start >= 118 && pk.Start <= 122 {
			found = true
			if pk.Max < 149 {
				t.Errorf("peak max = %v", pk.Max)
			}
		}
	}
	if !found {
		t.Errorf("spike at 120 not detected; peaks = %+v", pks)
	}
}

func TestDetectNegativeDip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	values := make([]float64, 200)
	for i := range values {
		values[i] = 100 + rng.NormFloat64()
	}
	for i := 60; i < 64; i++ {
		values[i] = 40
	}
	res, err := Detect(values, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	sawNeg := false
	for i := 60; i < 64; i++ {
		if res.Signals[i] == -1 {
			sawNeg = true
		}
	}
	if !sawNeg {
		t.Error("dip not flagged as -1")
	}
	// Dips must not appear as positive peaks.
	pks, _ := ExtractPeaks(values, res)
	for _, pk := range pks {
		if pk.Start >= 58 && pk.Start < 64 {
			t.Errorf("dip misclassified as peak: %+v", pk)
		}
	}
}

func TestInfluenceControlsBaselineDrag(t *testing.T) {
	// With influence=1 a long plateau becomes the new baseline and the
	// plateau's tail stops being flagged. With influence=0 the baseline
	// is frozen and the whole plateau stays flagged.
	values := make([]float64, 120)
	for i := range values {
		values[i] = 10
	}
	// tiny noise so std > 0
	rng := rand.New(rand.NewPCG(9, 10))
	for i := range values {
		values[i] += rng.NormFloat64() * 0.1
	}
	for i := 40; i < 80; i++ {
		values[i] = 30
	}
	frozen, err := Detect(values, Params{Lag: 8, Threshold: 3, Influence: 0})
	if err != nil {
		t.Fatal(err)
	}
	follow, err := Detect(values, Params{Lag: 8, Threshold: 3, Influence: 1})
	if err != nil {
		t.Fatal(err)
	}
	frozenCount, followCount := 0, 0
	for i := 40; i < 80; i++ {
		if frozen.Signals[i] == 1 {
			frozenCount++
		}
		if follow.Signals[i] == 1 {
			followCount++
		}
	}
	if frozenCount <= followCount {
		t.Errorf("influence=0 flagged %d, influence=1 flagged %d; frozen should flag more",
			frozenCount, followCount)
	}
}

func TestDetectParamValidation(t *testing.T) {
	values := make([]float64, 20)
	cases := []Params{
		{Lag: 1, Threshold: 3, Influence: 0.5},
		{Lag: 25, Threshold: 3, Influence: 0.5},
		{Lag: 5, Threshold: 0, Influence: 0.5},
		{Lag: 5, Threshold: 3, Influence: -0.1},
		{Lag: 5, Threshold: 3, Influence: 1.1},
	}
	for i, p := range cases {
		if _, err := Detect(values, p); err == nil {
			t.Errorf("case %d (%+v): want error", i, p)
		}
	}
}

func TestSignalsOnlyAfterLagProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		n := rng.IntN(150) + 30
		lag := rng.IntN(10) + 2
		if lag >= n {
			lag = n - 1
		}
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.NormFloat64() * 10
		}
		res, err := Detect(values, Params{Lag: lag, Threshold: 2.5, Influence: 0.3})
		if err != nil {
			return true
		}
		for i := 0; i < lag; i++ {
			if res.Signals[i] != 0 {
				return false
			}
		}
		return len(res.Signals) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExtractPeaksGrouping(t *testing.T) {
	values := []float64{0, 0, 5, 6, 7, 0, 0, 9, 0}
	res := &Result{Signals: []int{0, 0, 1, 1, 1, 0, 0, 1, 0}}
	res.AvgFilter = make([]float64, len(values))
	res.StdFilter = make([]float64, len(values))
	pks, err := ExtractPeaks(values, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(pks) != 2 {
		t.Fatalf("peaks = %+v", pks)
	}
	if pks[0].Start != 2 || pks[0].End != 5 || pks[0].Max != 7 || pks[0].Min != 5 {
		t.Errorf("first peak = %+v", pks[0])
	}
	if pks[0].Duration() != 3 {
		t.Errorf("duration = %d", pks[0].Duration())
	}
	if pks[1].Start != 7 || pks[1].End != 8 {
		t.Errorf("second peak = %+v", pks[1])
	}
}

func TestExtractPeaksErrors(t *testing.T) {
	if _, err := ExtractPeaks([]float64{1, 2}, nil); err == nil {
		t.Error("nil result: want error")
	}
	if _, err := ExtractPeaks([]float64{1, 2}, &Result{Signals: []int{0}}); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestPeakIntensity(t *testing.T) {
	pk := Peak{Max: 30, Min: 20}
	if math.Abs(pk.Intensity()-0.5) > 1e-12 {
		t.Errorf("Intensity = %v, want 0.5", pk.Intensity())
	}
	zero := Peak{Max: 5, Min: 0}
	if !math.IsInf(zero.Intensity(), 1) {
		t.Error("zero-min peak should have infinite intensity")
	}
}

func TestThresholdDetectBaseline(t *testing.T) {
	values := []float64{10, 10, 10, 10, 100, 10, 10, 10, 10, 10}
	res := ThresholdDetect(values, 2)
	if res.Signals[4] != 1 {
		t.Error("spike not flagged by threshold baseline")
	}
	count := 0
	for _, s := range res.Signals {
		if s != 0 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("baseline flagged %d samples, want 1", count)
	}
}

func TestPaperParams(t *testing.T) {
	p := PaperParams()
	if p.Lag != 8 || p.Threshold != 3 || p.Influence != 0.4 {
		t.Errorf("PaperParams = %+v", p)
	}
	// Lag must equal 2 hours at the 15-minute default resolution.
	if p.Lag*15 != 120 {
		t.Error("lag does not span 2 hours at 15-minute sampling")
	}
}
