package peaks

import (
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
)

// tuneSeries builds a clean weekly series with peaks at known topical
// times (Monday midday and evening).
func tuneSeries() *timeseries.Series {
	s := timeseries.NewWeek(timeseries.DefaultStep)
	for i := range s.Values {
		t := s.TimeAt(i)
		h := float64(t.Hour()) + float64(t.Minute())/60
		base := 1.0
		if h < 6 {
			base = 0.2
		}
		v := base
		if !timeseries.IsWeekend(t) {
			for _, c := range []struct{ center, amp float64 }{{13, 0.8}, {21, 0.5}} {
				d := h - c.center
				v += c.amp * math.Exp(-0.5*(d/0.4)*(d/0.4))
			}
		}
		s.Values[i] = v * 100
	}
	return s
}

func TestTuneFindsWorkingParams(t *testing.T) {
	series := []*timeseries.Series{tuneSeries()}
	results, best, err := Tune(series, DefaultGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(DefaultGrid()) {
		t.Errorf("results = %d, want %d", len(results), len(DefaultGrid()))
	}
	if best.Topical == 0 {
		t.Fatalf("best params %+v found no topical peaks", best.Params)
	}
	if best.Outside > 0 {
		t.Errorf("best params %+v produce %d outside peaks", best.Params, best.Outside)
	}
	// The paper's parameters must be competitive with the grid optimum.
	var paperRes *TuneResult
	for i := range results {
		if results[i].Params == PaperParams() {
			paperRes = &results[i]
		}
	}
	if paperRes == nil {
		t.Fatal("paper params not in the grid")
	}
	if paperRes.Score() < best.Score()-2 {
		t.Errorf("paper params score %d far below grid best %d",
			paperRes.Score(), best.Score())
	}
}

func TestTuneErrors(t *testing.T) {
	if _, _, err := Tune(nil, DefaultGrid()); err == nil {
		t.Error("no series: want error")
	}
	if _, _, err := Tune([]*timeseries.Series{tuneSeries()}, nil); err == nil {
		t.Error("no candidates: want error")
	}
	// Series shorter than every lag: no usable candidate.
	short := timeseries.New(timeseries.StudyStart, time.Hour, 3)
	if _, _, err := Tune([]*timeseries.Series{short}, DefaultGrid()); err == nil {
		t.Error("short series: want error")
	}
}

func TestTuneScore(t *testing.T) {
	r := TuneResult{Topical: 10, Outside: 2}
	if r.Score() != 0 {
		t.Errorf("Score = %d, want 0 (10 - 5*2)", r.Score())
	}
}

func TestDefaultGridCoversPaperParams(t *testing.T) {
	found := false
	for _, p := range DefaultGrid() {
		if p == PaperParams() {
			found = true
		}
	}
	if !found {
		t.Error("DefaultGrid must include the paper's parameters")
	}
}
