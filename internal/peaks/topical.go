package peaks

import (
	"time"

	"repro/internal/timeseries"
)

// TopicalTime enumerates the seven recurring moments of the week at
// which the paper finds all mobile-service activity peaks concentrate
// (Fig. 6): weekend midday and evening, plus five working-day slots.
type TopicalTime int

const (
	// WeekendMidday is around 1pm on Saturday or Sunday.
	WeekendMidday TopicalTime = iota
	// WeekendEvening is around 9pm on Saturday or Sunday.
	WeekendEvening
	// MorningCommute is around 8am on a working day.
	MorningCommute
	// MorningBreak is around 10am on a working day (the paper links it
	// to the pause between classes for student-heavy services).
	MorningBreak
	// Midday is around 1pm on a working day.
	Midday
	// AfternoonCommute is around 6pm on a working day.
	AfternoonCommute
	// Evening is around 9pm on a working day.
	Evening
	// NoTopicalTime marks a peak outside every topical window.
	NoTopicalTime
)

// NumTopicalTimes is the count of real topical times (excluding
// NoTopicalTime).
const NumTopicalTimes = 7

// String returns the paper's label for the topical time.
func (tt TopicalTime) String() string {
	switch tt {
	case WeekendMidday:
		return "Weekend midday"
	case WeekendEvening:
		return "Weekend evening"
	case MorningCommute:
		return "Morning commuting"
	case MorningBreak:
		return "Morning break"
	case Midday:
		return "Midday"
	case AfternoonCommute:
		return "Afternoon commuting"
	case Evening:
		return "Evening"
	default:
		return "None"
	}
}

// topicalWindow describes the tolerance window of one topical time, in
// fractional hours of the day.
type topicalWindow struct {
	tt       TopicalTime
	weekend  bool
	from, to float64 // [from, to) in hours
}

// The windows partition the plausible peak hours; centers follow the
// paper (8am, 10am, 1pm, 6pm, 9pm weekdays; 1pm, 9pm weekends).
var topicalWindows = []topicalWindow{
	{WeekendMidday, true, 11, 15.5},
	{WeekendEvening, true, 19, 23.5},
	{MorningCommute, false, 6.5, 9},
	{MorningBreak, false, 9, 11.5},
	{Midday, false, 11.5, 15.5},
	{AfternoonCommute, false, 16.5, 19.5},
	{Evening, false, 19.5, 23.5},
}

// AssignTopical maps an instant to its topical time, or NoTopicalTime
// when the instant lies outside every window (e.g. 4am).
func AssignTopical(t time.Time) TopicalTime {
	weekend := timeseries.IsWeekend(t)
	hour := float64(t.Hour()) + float64(t.Minute())/60
	for _, w := range topicalWindows {
		if w.weekend == weekend && hour >= w.from && hour < w.to {
			return w.tt
		}
	}
	return NoTopicalTime
}

// Calendar is the per-service peak fingerprint of Fig. 6: which topical
// times show at least one activity peak, and the strongest intensity
// observed in each.
type Calendar struct {
	// Present marks topical times with at least one detected peak.
	Present [NumTopicalTimes]bool
	// Intensity is the maximum Peak.Intensity() observed per topical
	// time (0 when absent, as Fig. 7 plots ratios per slot).
	Intensity [NumTopicalTimes]float64
}

// BuildCalendar detects peaks in the series with the given parameters
// and folds them into the topical-time calendar. Peaks falling outside
// every topical window are counted in the returned outside value — the
// paper reports this is empirically zero for its 20 services, a
// property the integration tests assert on synthetic data.
func BuildCalendar(s *timeseries.Series, p Params) (Calendar, int, error) {
	var cal Calendar
	pks, err := DetectPeaks(s.Values, p)
	if err != nil {
		return cal, 0, err
	}
	outside := 0
	for _, pk := range pks {
		// Single-sample flags and sub-3% excursions are measurement
		// noise, not activity peaks: a real usage surge is sustained
		// over multiple samples (>= 30 minutes at the default
		// resolution) and lifts traffic by tens of percent (Fig. 7's
		// smallest intensities are ≈ 5%).
		if pk.Duration() < 2 || pk.Intensity() < 0.03 {
			continue
		}
		// A peak belongs to the topical time of its apex: the detector
		// flags the rising front a few samples early, but the moment of
		// maximum activity is what Fig. 6's calendar records.
		tt := AssignTopical(s.TimeAt(pk.MaxIdx))
		if tt == NoTopicalTime {
			tt = AssignTopical(s.TimeAt(pk.Start))
		}
		if tt == NoTopicalTime {
			mid := (pk.Start + pk.End) / 2
			tt = AssignTopical(s.TimeAt(mid))
		}
		if tt == NoTopicalTime {
			outside++
			continue
		}
		cal.Present[tt] = true
		if in := pk.Intensity(); in > cal.Intensity[tt] {
			cal.Intensity[tt] = in
		}
	}
	return cal, outside, nil
}

// Count returns how many topical times are present in the calendar.
func (c Calendar) Count() int {
	n := 0
	for _, p := range c.Present {
		if p {
			n++
		}
	}
	return n
}

// Distance returns the Hamming distance between two calendars — the
// number of topical times where one service peaks and the other does
// not. Fig. 6's qualitative claim is that most service pairs are at
// distance >= 1 even within a category.
func (c Calendar) Distance(other Calendar) int {
	d := 0
	for i := range c.Present {
		if c.Present[i] != other.Present[i] {
			d++
		}
	}
	return d
}
