// Package peaks implements the smoothed z-score activity-peak detector
// the paper applies to every per-service time series (Section 4,
// Figs. 4, 6 and 7), together with the mapping of detected peaks onto
// the seven "topical times" of the week.
//
// The detector is the robust streaming algorithm by J.P.G. van Brakel
// (the gist the paper cites): a moving window of lag samples provides a
// running mean and standard deviation of a *filtered* version of the
// signal; a sample deviating from the running mean by more than
// threshold standard deviations raises a signal, and contributes to the
// filter only with the given influence, so that a peak does not drag
// the baseline up behind itself.
package peaks

import (
	"errors"
	"fmt"
	"math"
)

// Params controls the smoothed z-score detector.
type Params struct {
	// Lag is the number of past samples in the smoothing window.
	Lag int
	// Threshold is the number of running standard deviations a sample
	// must exceed to be flagged.
	Threshold float64
	// Influence in [0, 1] is the weight of flagged samples in the
	// running statistics: 0 freezes the baseline during peaks, 1
	// disables the robustness entirely.
	Influence float64
}

// PaperParams are the parameters the paper selected after tuning:
// threshold of 3 z-scores, a 2-hour lag (8 samples at the default
// 15-minute resolution) and influence 0.4.
func PaperParams() Params {
	return Params{Lag: 8, Threshold: 3, Influence: 0.4}
}

// Validate reports whether the parameters are usable for a series of
// length n.
func (p Params) Validate(n int) error {
	if p.Lag < 2 {
		return fmt.Errorf("peaks: lag %d < 2", p.Lag)
	}
	if n <= p.Lag {
		return fmt.Errorf("peaks: series length %d <= lag %d", n, p.Lag)
	}
	if p.Threshold <= 0 {
		return fmt.Errorf("peaks: non-positive threshold %v", p.Threshold)
	}
	if p.Influence < 0 || p.Influence > 1 {
		return fmt.Errorf("peaks: influence %v outside [0,1]", p.Influence)
	}
	return nil
}

// Result carries the full detector output: the per-sample signal
// (+1 positive peak, -1 negative dip, 0 baseline) and the running
// filter statistics, which Fig. 4 (right) plots as the smoothed signal
// and its threshold band.
type Result struct {
	Signals   []int     // len == input length
	AvgFilter []float64 // running mean of the filtered signal
	StdFilter []float64 // running standard deviation
}

// Detect runs the smoothed z-score algorithm over values.
func Detect(values []float64, p Params) (*Result, error) {
	if err := p.Validate(len(values)); err != nil {
		return nil, err
	}
	n := len(values)
	res := &Result{
		Signals:   make([]int, n),
		AvgFilter: make([]float64, n),
		StdFilter: make([]float64, n),
	}
	filtered := make([]float64, n)
	copy(filtered, values[:p.Lag])

	mean, std := meanStd(values[:p.Lag])
	res.AvgFilter[p.Lag-1] = mean
	res.StdFilter[p.Lag-1] = std

	for i := p.Lag; i < n; i++ {
		dev := values[i] - res.AvgFilter[i-1]
		if math.Abs(dev) > p.Threshold*res.StdFilter[i-1] {
			if dev > 0 {
				res.Signals[i] = 1
			} else {
				res.Signals[i] = -1
			}
			filtered[i] = p.Influence*values[i] + (1-p.Influence)*filtered[i-1]
		} else {
			res.Signals[i] = 0
			filtered[i] = values[i]
		}
		m, s := meanStd(filtered[i-p.Lag+1 : i+1])
		res.AvgFilter[i] = m
		res.StdFilter[i] = s
	}
	return res, nil
}

func meanStd(x []float64) (mean, std float64) {
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	var variance float64
	for _, v := range x {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(x))
	return mean, math.Sqrt(variance)
}

// Peak is a maximal run of consecutive positive signals. Start is the
// rising front (the index Fig. 4 marks with a vertical line), End is
// the index one past the last flagged sample.
type Peak struct {
	Start, End int
	// Max and Min are the extreme raw values inside [Start, End); their
	// ratio is the peak intensity of Fig. 7. MaxIdx is the apex sample.
	Max, Min float64
	MaxIdx   int
}

// Duration returns the peak width in samples.
func (p Peak) Duration() int { return p.End - p.Start }

// Intensity returns the max/min ratio of raw values within the peak
// interval, expressed as a gain over the interval minimum
// (max/min - 1). A peak whose minimum is zero has infinite intensity;
// callers clip for presentation.
func (p Peak) Intensity() float64 {
	if p.Min == 0 {
		return math.Inf(1)
	}
	return p.Max/p.Min - 1
}

// ErrEmptySignal is returned by ExtractPeaks on a nil result.
var ErrEmptySignal = errors.New("peaks: empty detector result")

// ExtractPeaks groups positive signals into contiguous Peak intervals,
// recording the raw-signal extremes within each interval.
func ExtractPeaks(values []float64, res *Result) ([]Peak, error) {
	if res == nil || len(res.Signals) != len(values) {
		return nil, ErrEmptySignal
	}
	var out []Peak
	i := 0
	for i < len(values) {
		if res.Signals[i] != 1 {
			i++
			continue
		}
		j := i
		for j < len(values) && res.Signals[j] == 1 {
			j++
		}
		pk := Peak{Start: i, End: j, Max: values[i], Min: values[i], MaxIdx: i}
		for k := i; k < j; k++ {
			if values[k] > pk.Max {
				pk.Max = values[k]
				pk.MaxIdx = k
			}
			if values[k] < pk.Min {
				pk.Min = values[k]
			}
		}
		out = append(out, pk)
		i = j
	}
	return out, nil
}

// DetectPeaks is the convenience composition Detect + ExtractPeaks.
func DetectPeaks(values []float64, p Params) ([]Peak, error) {
	res, err := Detect(values, p)
	if err != nil {
		return nil, err
	}
	return ExtractPeaks(values, res)
}

// ThresholdDetect is the naive fixed-threshold baseline used by the
// detector ablation: it flags every sample exceeding the series mean by
// k standard deviations, with no smoothing and no influence control.
func ThresholdDetect(values []float64, k float64) *Result {
	n := len(values)
	res := &Result{
		Signals:   make([]int, n),
		AvgFilter: make([]float64, n),
		StdFilter: make([]float64, n),
	}
	mean, std := meanStd(values)
	for i, v := range values {
		res.AvgFilter[i] = mean
		res.StdFilter[i] = std
		if v-mean > k*std {
			res.Signals[i] = 1
		} else if mean-v > k*std {
			res.Signals[i] = -1
		}
	}
	return res
}
