package peaks

import (
	"testing"
	"time"

	"repro/internal/timeseries"
)

// saturday returns the study Saturday at the given fractional hour.
func saturday(hour float64) time.Time {
	return timeseries.StudyStart.Add(time.Duration(hour * float64(time.Hour)))
}

// monday returns the study Monday at the given fractional hour.
func monday(hour float64) time.Time {
	return timeseries.StudyStart.Add(48 * time.Hour).Add(time.Duration(hour * float64(time.Hour)))
}

func TestAssignTopical(t *testing.T) {
	cases := []struct {
		at   time.Time
		want TopicalTime
	}{
		{saturday(13), WeekendMidday},
		{saturday(21), WeekendEvening},
		{saturday(8), NoTopicalTime}, // no weekend morning-commute slot
		{monday(8), MorningCommute},
		{monday(10), MorningBreak},
		{monday(13), Midday},
		{monday(18), AfternoonCommute},
		{monday(21), Evening},
		{monday(3), NoTopicalTime},
		{monday(15.6), NoTopicalTime},
	}
	for _, c := range cases {
		if got := AssignTopical(c.at); got != c.want {
			t.Errorf("AssignTopical(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestTopicalWindowsDisjointPerDayType(t *testing.T) {
	// Every minute of the week maps to at most one topical time by
	// construction; verify windows of the same day type do not overlap.
	for i, a := range topicalWindows {
		for _, b := range topicalWindows[i+1:] {
			if a.weekend != b.weekend {
				continue
			}
			if a.from < b.to && b.from < a.to {
				t.Errorf("windows overlap: %v and %v", a.tt, b.tt)
			}
		}
	}
}

func TestTopicalStrings(t *testing.T) {
	want := map[TopicalTime]string{
		WeekendMidday:    "Weekend midday",
		WeekendEvening:   "Weekend evening",
		MorningCommute:   "Morning commuting",
		MorningBreak:     "Morning break",
		Midday:           "Midday",
		AfternoonCommute: "Afternoon commuting",
		Evening:          "Evening",
		NoTopicalTime:    "None",
	}
	for tt, s := range want {
		if tt.String() != s {
			t.Errorf("String(%d) = %q, want %q", tt, tt.String(), s)
		}
	}
}

func TestBuildCalendarDetectsInjectedPeaks(t *testing.T) {
	// Build a weekly series with a smooth diurnal baseline plus sharp
	// peaks at Monday 13:00 and Monday 21:00; the calendar must mark
	// Midday and Evening (and may mark nothing else on weekdays).
	s := timeseries.NewWeek(timeseries.DefaultStep)
	for i := range s.Values {
		h := float64(s.TimeAt(i).Hour())
		s.Values[i] = 100 + 20*diurnal(h)
	}
	// Triangular pulse: real activity peaks rise to an apex, they are
	// not rectangular plateaus (a flat interval has zero max/min
	// intensity and is discarded as noise).
	inject := func(at time.Time, amp float64) {
		idx := s.IndexOf(at)
		for k := -2; k <= 2; k++ {
			if idx+k >= 0 && idx+k < s.Len() {
				s.Values[idx+k] += amp * (1 - float64(abs(k))/3)
			}
		}
	}
	inject(monday(13), 300)
	inject(monday(21), 250)

	cal, _, err := BuildCalendar(s, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if !cal.Present[Midday] {
		t.Error("Midday peak not in calendar")
	}
	if !cal.Present[Evening] {
		t.Error("Evening peak not in calendar")
	}
	if cal.Present[WeekendMidday] || cal.Present[WeekendEvening] {
		t.Error("weekend slots spuriously present")
	}
	if cal.Intensity[Midday] <= 0 {
		t.Errorf("Midday intensity = %v", cal.Intensity[Midday])
	}
}

func abs(k int) int {
	if k < 0 {
		return -k
	}
	return k
}

func diurnal(h float64) float64 {
	// crude day curve: low at night, high during the day
	if h < 7 {
		return 0
	}
	return (h - 7) / 16
}

func TestCalendarCountAndDistance(t *testing.T) {
	var a, b Calendar
	a.Present[Midday] = true
	a.Present[Evening] = true
	b.Present[Midday] = true
	b.Present[MorningBreak] = true
	if a.Count() != 2 || b.Count() != 2 {
		t.Errorf("counts = %d, %d", a.Count(), b.Count())
	}
	if d := a.Distance(b); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
	if d := a.Distance(a); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestBuildCalendarErrorPropagation(t *testing.T) {
	s := timeseries.New(timeseries.StudyStart, time.Hour, 4)
	if _, _, err := BuildCalendar(s, PaperParams()); err == nil {
		t.Error("short series: want error")
	}
}
