package pkt

// GTPv1U is the GPRS Tunnelling Protocol v1 user-plane header
// (3GPP TS 29.281). The probes inspect it on port 2152 of the Gn and
// S5/S8 interfaces to account subscriber traffic per tunnel (TEID).
type GTPv1U struct {
	// Flags byte: version (3 bits), PT, reserved, E, S, PN.
	MessageType uint8 // 0xFF = G-PDU (encapsulated user packet)
	Length      uint16
	TEID        uint32
	// Sequence is valid when HasSeq (S flag) is set.
	HasSeq   bool
	Sequence uint16

	payload []byte
}

// GTPv1-U message types used by the simulator.
const (
	GTPMsgEchoRequest  = 1
	GTPMsgEchoResponse = 2
	GTPMsgGPDU         = 0xFF
)

// LayerType implements DecodingLayer.
func (g *GTPv1U) LayerType() LayerType { return LayerTypeGTPv1U }

// LayerPayload implements DecodingLayer.
func (g *GTPv1U) LayerPayload() []byte { return g.payload }

// NextLayerType implements DecodingLayer: a G-PDU encapsulates the
// subscriber's IP packet.
func (g *GTPv1U) NextLayerType() LayerType {
	if g.MessageType == GTPMsgGPDU {
		return LayerTypeIPv4
	}
	return LayerTypePayload
}

// DecodeFromBytes implements DecodingLayer.
func (g *GTPv1U) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return errTooShort(LayerTypeGTPv1U, 8, len(data))
	}
	flags := data[0]
	if flags>>5 != 1 {
		return &DecodeError{LayerTypeGTPv1U, "version is not 1"}
	}
	if flags&0x10 == 0 {
		return &DecodeError{LayerTypeGTPv1U, "PT flag not set (GTP')"}
	}
	g.MessageType = data[1]
	g.Length = be16(data[2:])
	g.TEID = be32(data[4:])
	hdrLen := 8
	g.HasSeq = flags&0x02 != 0
	ext := flags&0x04 != 0
	pn := flags&0x01 != 0
	if g.HasSeq || ext || pn {
		// Optional fields occupy 4 bytes when any flag is set.
		if len(data) < 12 {
			return errTooShort(LayerTypeGTPv1U, 12, len(data))
		}
		g.Sequence = be16(data[8:])
		if ext && data[11] != 0 {
			return &DecodeError{LayerTypeGTPv1U, "extension headers unsupported"}
		}
		hdrLen = 12
	}
	end := 8 + int(g.Length)
	if end > len(data) {
		return &DecodeError{LayerTypeGTPv1U, "length beyond captured data"}
	}
	if hdrLen > end {
		return &DecodeError{LayerTypeGTPv1U, "optional header beyond message length"}
	}
	g.payload = data[hdrLen:end]
	return nil
}

// SerializeTo implements SerializableLayer.
func (g *GTPv1U) SerializeTo(buf []byte, payload []byte) []byte {
	flags := byte(1<<5 | 0x10)
	optLen := 0
	if g.HasSeq {
		flags |= 0x02
		optLen = 4
	}
	length := uint16(optLen + len(payload))
	var hdrArr [12]byte
	hdr := hdrArr[:8+optLen]
	hdr[0] = flags
	hdr[1] = g.MessageType
	put16(hdr[2:], length)
	put32(hdr[4:], g.TEID)
	if g.HasSeq {
		put16(hdr[8:], g.Sequence)
	}
	buf = append(buf, hdr...)
	return append(buf, payload...)
}
