// Native fuzz harness for the frame parser. Lives in an external test
// package so the corpus can be seeded with real simulator frames
// (gtpsim imports pkt, so an in-package test could not import it).
package pkt_test

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/gtpsim"
	"repro/internal/pkt"
	"repro/internal/services"
)

// FuzzParserDecode drives Parser.Decode with mutated real traffic. Two
// properties must survive arbitrary input: no panic (the deferred
// recover turns one into a failure with the offending bytes), and on
// success a layer chain the decoding grammar can actually produce —
// no mis-decoded chains like an inner IP without a tunnel or layers
// after a terminal GTP-C.
func FuzzParserDecode(f *testing.F) {
	country := geo.Generate(geo.SmallConfig())
	cfg := gtpsim.DefaultConfig()
	cfg.Sessions = 10
	sim, err := gtpsim.New(country, services.Catalog(), cfg)
	if err != nil {
		f.Fatal(err)
	}
	frames, _ := sim.Run()
	// Every frame family appears early (control, data DL/UL, delete);
	// stride through the rest for size diversity without a huge corpus.
	for i, fr := range frames {
		if i < 24 || i%37 == 0 {
			f.Add(fr.Data)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add(make([]byte, 20))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p pkt.Parser
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %x: %v", data, r)
			}
		}()
		decoded, err := p.Decode(data, nil)
		if err != nil {
			return
		}
		checkLayerChain(t, decoded, data)
	})
}

// checkLayerChain asserts the structural invariants of a successfully
// decoded frame.
func checkLayerChain(t *testing.T, decoded []pkt.LayerType, data []byte) {
	t.Helper()
	if len(decoded) == 0 || decoded[0] != pkt.LayerTypeIPv4 {
		t.Fatalf("chain %v does not start at outer IPv4 (frame %x)", decoded, data)
	}
	inTunnel := false
	for i, lt := range decoded {
		last := i == len(decoded)-1
		switch lt {
		case pkt.LayerTypeIPv4:
			// Only the outer IP (index 0) or the tunnelled subscriber
			// packet directly after GTP-U.
			if i != 0 && (!inTunnel || decoded[i-1] != pkt.LayerTypeGTPv1U) {
				t.Fatalf("chain %v: IPv4 at %d outside a tunnel (frame %x)", decoded, i, data)
			}
		case pkt.LayerTypeGTPv1U:
			if inTunnel {
				t.Fatalf("chain %v: GTP-U at %d inside a tunnel (frame %x)", decoded, i, data)
			}
			if i == 0 || decoded[i-1] != pkt.LayerTypeUDP {
				t.Fatalf("chain %v: GTP-U at %d not over UDP (frame %x)", decoded, i, data)
			}
			inTunnel = true
		case pkt.LayerTypeGTPv1C, pkt.LayerTypeGTPv2C:
			if !last {
				t.Fatalf("chain %v: layers after terminal GTP-C (frame %x)", decoded, data)
			}
			if inTunnel {
				t.Fatalf("chain %v: GTP-C inside a tunnel (frame %x)", decoded, data)
			}
		case pkt.LayerTypeUDP, pkt.LayerTypeTCP:
			if decoded[i-1] != pkt.LayerTypeIPv4 {
				t.Fatalf("chain %v: transport at %d not over IPv4 (frame %x)", decoded, i, data)
			}
		case pkt.LayerTypePayload:
			if !last {
				t.Fatalf("chain %v: layers after payload (frame %x)", decoded, data)
			}
		default:
			t.Fatalf("chain %v: unexpected layer %v (frame %x)", decoded, lt, data)
		}
	}
}
