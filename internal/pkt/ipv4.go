package pkt

// IPv4 is the Internet Protocol version 4 header (RFC 791). Options
// are preserved as raw bytes.
type IPv4 struct {
	Version  uint8
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	Length   uint16 // total length including header
	ID       uint16
	Flags    uint8  // 3 bits
	FragOff  uint16 // 13 bits
	TTL      uint8
	Protocol uint8
	Checksum uint16
	SrcIP    [4]byte
	DstIP    [4]byte
	Options  []byte

	payload []byte
}

// LayerType implements DecodingLayer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// LayerPayload implements DecodingLayer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// NextLayerType implements DecodingLayer.
func (ip *IPv4) NextLayerType() LayerType {
	switch ip.Protocol {
	case IPProtoTCP:
		return LayerTypeTCP
	case IPProtoUDP:
		return LayerTypeUDP
	default:
		return LayerTypePayload
	}
}

// DecodeFromBytes implements DecodingLayer. It validates the header
// length, total length and checksum.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return errTooShort(LayerTypeIPv4, 20, len(data))
	}
	ip.Version = data[0] >> 4
	if ip.Version != 4 {
		return &DecodeError{LayerTypeIPv4, "version is not 4"}
	}
	ip.IHL = data[0] & 0x0f
	hdrLen := int(ip.IHL) * 4
	if hdrLen < 20 {
		return &DecodeError{LayerTypeIPv4, "header length below 20 bytes"}
	}
	if len(data) < hdrLen {
		return errTooShort(LayerTypeIPv4, hdrLen, len(data))
	}
	ip.TOS = data[1]
	ip.Length = be16(data[2:])
	if int(ip.Length) < hdrLen {
		return &DecodeError{LayerTypeIPv4, "total length below header length"}
	}
	if int(ip.Length) > len(data) {
		return &DecodeError{LayerTypeIPv4, "total length beyond captured data"}
	}
	ip.ID = be16(data[4:])
	ip.Flags = data[6] >> 5
	ip.FragOff = be16(data[6:]) & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = be16(data[10:])
	copy(ip.SrcIP[:], data[12:16])
	copy(ip.DstIP[:], data[16:20])
	ip.Options = data[20:hdrLen]
	if Checksum(data[:hdrLen]) != 0 {
		return &DecodeError{LayerTypeIPv4, "header checksum mismatch"}
	}
	ip.payload = data[hdrLen:ip.Length]
	return nil
}

// SerializeTo implements SerializableLayer: it writes the header with
// recomputed Length and Checksum, then the payload. The header builds
// in a stack buffer (IHL bounds it at 60 bytes), so serialization
// itself never allocates — growth is the caller's append.
func (ip *IPv4) SerializeTo(buf []byte, payload []byte) []byte {
	hdrLen := 20 + len(ip.Options)
	if hdrLen%4 != 0 {
		// Pad options to a 32-bit boundary.
		pad := 4 - hdrLen%4
		ip.Options = append(ip.Options, make([]byte, pad)...)
		hdrLen += pad
	}
	total := hdrLen + len(payload)
	var hdrArr [60]byte
	var hdr []byte
	if hdrLen <= len(hdrArr) {
		hdr = hdrArr[:hdrLen]
	} else {
		hdr = make([]byte, hdrLen) // options beyond the IHL bound; cold
	}
	hdr[0] = 4<<4 | uint8(hdrLen/4)
	hdr[1] = ip.TOS
	put16(hdr[2:], uint16(total))
	put16(hdr[4:], ip.ID)
	put16(hdr[6:], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	hdr[8] = ip.TTL
	hdr[9] = ip.Protocol
	// checksum zero for now
	copy(hdr[12:16], ip.SrcIP[:])
	copy(hdr[16:20], ip.DstIP[:])
	copy(hdr[20:], ip.Options)
	cs := Checksum(hdr)
	put16(hdr[10:], cs)
	buf = append(buf, hdr...)
	return append(buf, payload...)
}

// Checksum computes the RFC 1071 Internet checksum of data: the 16-bit
// one's-complement of the one's-complement sum. A buffer containing a
// correct checksum field sums to zero.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// pseudoHeaderChecksum computes the TCP/UDP pseudo-header sum.
func pseudoHeaderChecksum(src, dst [4]byte, proto uint8, length int) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

func checksumWithPseudo(pseudo uint32, data []byte) uint16 {
	sum := pseudo
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}
