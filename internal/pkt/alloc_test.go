package pkt

import "testing"

// buildGPDU assembles a clean GTP-U G-PDU frame carrying a TCP segment
// — the hot-path shape the probe decodes millions of times per run.
func buildGPDU(payload int) []byte {
	ue := [4]byte{10, 0, 0, 1}
	server := [4]byte{203, 1, 0, 1}
	tcp := &TCP{SrcPort: 443, DstPort: 50000, Flags: TCPAck}
	tcp.SetChecksumIPs(server, ue)
	inner := (&IPv4{TTL: 60, Protocol: IPProtoTCP, SrcIP: server, DstIP: ue}).SerializeTo(nil, tcp.SerializeTo(nil, make([]byte, payload)))
	tun := (&GTPv1U{MessageType: GTPMsgGPDU, TEID: 7}).SerializeTo(nil, inner)
	seg := (&UDP{SrcPort: 31000, DstPort: PortGTPU}).SerializeTo(nil, tun)
	return (&IPv4{TTL: 64, Protocol: IPProtoUDP, SrcIP: [4]byte{172, 16, 0, 2}, DstIP: [4]byte{172, 16, 0, 1}}).SerializeTo(nil, seg)
}

// TestDecodeZeroAllocs pins the parser's zero-allocation contract: in
// steady state (decoded-slice capacity established), Decode of a clean
// user-plane frame performs no heap allocation per frame. A regression
// here silently re-introduces per-frame garbage across every probe
// shard, so the budget is exactly zero.
func TestDecodeZeroAllocs(t *testing.T) {
	frame := buildGPDU(1340)
	var p Parser
	var decoded []LayerType
	var err error
	// Warm-up: grows the decoded slice to its steady-state capacity.
	if decoded, err = p.Decode(frame, decoded); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		decoded, err = p.Decode(frame, decoded)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Parser.Decode allocates %.1f objects per clean frame, want 0", allocs)
	}
}

// TestSerializeAppendOnlyAllocs pins the serializers' discipline: with
// a caller-provided buffer of sufficient capacity, building a full
// G-PDU frame allocates nothing (headers build in stack arrays).
func TestSerializeAppendOnlyAllocs(t *testing.T) {
	ue := [4]byte{10, 0, 0, 1}
	server := [4]byte{203, 1, 0, 1}
	payload := make([]byte, 1340)
	bufTCP := make([]byte, 0, 2048)
	bufIP := make([]byte, 0, 2048)
	bufGTP := make([]byte, 0, 2048)
	bufSeg := make([]byte, 0, 2048)
	bufOut := make([]byte, 0, 2048)
	allocs := testing.AllocsPerRun(200, func() {
		tcp := &TCP{SrcPort: 443, DstPort: 50000, Flags: TCPAck}
		tcp.SetChecksumIPs(server, ue)
		bufTCP = tcp.SerializeTo(bufTCP[:0], payload)
		inner := &IPv4{TTL: 60, Protocol: IPProtoTCP, SrcIP: server, DstIP: ue}
		bufIP = inner.SerializeTo(bufIP[:0], bufTCP)
		gtpu := &GTPv1U{MessageType: GTPMsgGPDU, TEID: 7}
		bufGTP = gtpu.SerializeTo(bufGTP[:0], bufIP)
		udp := &UDP{SrcPort: 31000, DstPort: PortGTPU}
		bufSeg = udp.SerializeTo(bufSeg[:0], bufGTP)
		ip := &IPv4{TTL: 64, Protocol: IPProtoUDP, SrcIP: [4]byte{172, 16, 0, 2}, DstIP: [4]byte{172, 16, 0, 1}}
		bufOut = ip.SerializeTo(bufOut[:0], bufSeg)
	})
	// SetChecksumIPs escapes its ipPair to the heap; everything else is
	// stack or caller-owned. Budget: at most that one object.
	if allocs > 1 {
		t.Errorf("frame serialization allocates %.1f objects, want <= 1", allocs)
	}
}
