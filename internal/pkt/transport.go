package pkt

// UDP is the User Datagram Protocol header (RFC 768). Checksum
// verification requires the enclosing IPv4 addresses; DecodeFromBytes
// alone checks structure, and VerifyChecksum can be called with the IP
// layer when end-to-end validation is wanted.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16

	payload []byte
	raw     []byte
	csumIPs *ipPair
}

// LayerType implements DecodingLayer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// LayerPayload implements DecodingLayer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// NextLayerType implements DecodingLayer: GTP demultiplexing happens on
// the well-known destination (or source, for responses) port.
func (u *UDP) NextLayerType() LayerType {
	switch {
	case u.DstPort == PortGTPU || u.SrcPort == PortGTPU:
		return LayerTypeGTPv1U
	case u.DstPort == PortGTPC || u.SrcPort == PortGTPC:
		// GTPv1-C and GTPv2-C share the port; the version nibble in the
		// first payload byte disambiguates.
		if len(u.payload) > 0 && u.payload[0]>>5 == 2 {
			return LayerTypeGTPv2C
		}
		return LayerTypeGTPv1C
	default:
		return LayerTypePayload
	}
}

// DecodeFromBytes implements DecodingLayer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return errTooShort(LayerTypeUDP, 8, len(data))
	}
	u.SrcPort = be16(data)
	u.DstPort = be16(data[2:])
	u.Length = be16(data[4:])
	u.Checksum = be16(data[6:])
	if int(u.Length) < 8 {
		return &DecodeError{LayerTypeUDP, "length below 8"}
	}
	if int(u.Length) > len(data) {
		return &DecodeError{LayerTypeUDP, "length beyond captured data"}
	}
	u.raw = data[:u.Length]
	u.payload = data[8:u.Length]
	return nil
}

// VerifyChecksum checks the UDP checksum against the pseudo header of
// the enclosing IP packet. A zero checksum means "not computed" and
// passes (RFC 768).
func (u *UDP) VerifyChecksum(ip *IPv4) bool {
	if u.Checksum == 0 {
		return true
	}
	return checksumWithPseudo(pseudoHeaderChecksum(ip.SrcIP, ip.DstIP, IPProtoUDP, len(u.raw)), u.raw) == 0
}

// SerializeTo implements SerializableLayer. The checksum is computed
// when SetChecksumIPs was called; otherwise it is left zero (legal for
// UDP over IPv4).
func (u *UDP) SerializeTo(buf []byte, payload []byte) []byte {
	length := 8 + len(payload)
	var hdrArr [8]byte
	hdr := hdrArr[:]
	put16(hdr, u.SrcPort)
	put16(hdr[2:], u.DstPort)
	put16(hdr[4:], uint16(length))
	// checksum filled below if requested
	start := len(buf)
	buf = append(buf, hdr...)
	buf = append(buf, payload...)
	if u.csumIPs != nil {
		seg := buf[start:]
		cs := checksumWithPseudo(pseudoHeaderChecksum(u.csumIPs[0], u.csumIPs[1], IPProtoUDP, length), seg)
		if cs == 0 {
			cs = 0xffff // RFC 768: transmitted as all ones
		}
		put16(seg[6:], cs)
	}
	return buf
}

// csumIPs holds the (src, dst) pair for checksum computation.
type ipPair = [2][4]byte

// SetChecksumIPs arms checksum computation for SerializeTo using the
// given IP endpoints.
func (u *UDP) SetChecksumIPs(src, dst [4]byte) { u.csumIPs = &ipPair{src, dst} }

// TCP is the Transmission Control Protocol header (RFC 9293), options
// preserved raw.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            uint8 // CWR|ECE|URG|ACK|PSH|RST|SYN|FIN
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte

	payload []byte
	raw     []byte
	csumIPs *ipPair
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// LayerType implements DecodingLayer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// LayerPayload implements DecodingLayer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// NextLayerType implements DecodingLayer.
func (t *TCP) NextLayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements DecodingLayer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return errTooShort(LayerTypeTCP, 20, len(data))
	}
	t.SrcPort = be16(data)
	t.DstPort = be16(data[2:])
	t.Seq = be32(data[4:])
	t.Ack = be32(data[8:])
	t.DataOffset = data[12] >> 4
	hdrLen := int(t.DataOffset) * 4
	if hdrLen < 20 {
		return &DecodeError{LayerTypeTCP, "data offset below 5 words"}
	}
	if len(data) < hdrLen {
		return errTooShort(LayerTypeTCP, hdrLen, len(data))
	}
	t.Flags = data[13]
	t.Window = be16(data[14:])
	t.Checksum = be16(data[16:])
	t.Urgent = be16(data[18:])
	t.Options = data[20:hdrLen]
	t.raw = data
	t.payload = data[hdrLen:]
	return nil
}

// VerifyChecksum checks the TCP checksum against the enclosing IP
// pseudo header.
func (t *TCP) VerifyChecksum(ip *IPv4) bool {
	return checksumWithPseudo(pseudoHeaderChecksum(ip.SrcIP, ip.DstIP, IPProtoTCP, len(t.raw)), t.raw) == 0
}

// SerializeTo implements SerializableLayer; checksum is computed when
// SetChecksumIPs was called.
func (t *TCP) SerializeTo(buf []byte, payload []byte) []byte {
	opts := t.Options
	if len(opts)%4 != 0 {
		opts = append(append([]byte(nil), opts...), make([]byte, 4-len(opts)%4)...)
	}
	hdrLen := 20 + len(opts)
	var hdrArr [60]byte
	var hdr []byte
	if hdrLen <= len(hdrArr) {
		hdr = hdrArr[:hdrLen]
	} else {
		hdr = make([]byte, hdrLen) // options beyond the data-offset bound; cold
	}
	put16(hdr, t.SrcPort)
	put16(hdr[2:], t.DstPort)
	put32(hdr[4:], t.Seq)
	put32(hdr[8:], t.Ack)
	hdr[12] = uint8(hdrLen/4) << 4
	hdr[13] = t.Flags
	put16(hdr[14:], t.Window)
	put16(hdr[18:], t.Urgent)
	copy(hdr[20:], opts)
	start := len(buf)
	buf = append(buf, hdr...)
	buf = append(buf, payload...)
	if t.csumIPs != nil {
		seg := buf[start:]
		cs := checksumWithPseudo(pseudoHeaderChecksum(t.csumIPs[0], t.csumIPs[1], IPProtoTCP, len(seg)), seg)
		put16(seg[16:], cs)
	}
	return buf
}

// SetChecksumIPs arms checksum computation for SerializeTo.
func (t *TCP) SetChecksumIPs(src, dst [4]byte) { t.csumIPs = &ipPair{src, dst} }
