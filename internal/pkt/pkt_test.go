package pkt

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mkIP(src, dst [4]byte, proto uint8) *IPv4 {
	return &IPv4{TTL: 64, Protocol: proto, SrcIP: src, DstIP: dst, ID: 42}
}

var (
	ueIP     = [4]byte{10, 20, 30, 40}
	serverIP = [4]byte{93, 184, 216, 34}
	sgwIP    = [4]byte{172, 16, 0, 1}
	pgwIP    = [4]byte{172, 16, 0, 2}
)

func TestIPv4RoundTrip(t *testing.T) {
	payload := []byte("hello world")
	ip := mkIP(ueIP, serverIP, IPProtoUDP)
	wire := ip.SerializeTo(nil, payload)

	var dec IPv4
	if err := dec.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if dec.SrcIP != ueIP || dec.DstIP != serverIP {
		t.Errorf("addresses mangled: %v -> %v", dec.SrcIP, dec.DstIP)
	}
	if dec.Protocol != IPProtoUDP || dec.TTL != 64 || dec.ID != 42 {
		t.Errorf("fields mangled: %+v", dec)
	}
	if !bytes.Equal(dec.LayerPayload(), payload) {
		t.Errorf("payload mangled: %q", dec.LayerPayload())
	}
}

func TestIPv4ChecksumValidation(t *testing.T) {
	wire := mkIP(ueIP, serverIP, IPProtoTCP).SerializeTo(nil, []byte("x"))
	wire[12] ^= 0xff // corrupt source IP
	var dec IPv4
	if err := dec.DecodeFromBytes(wire); err == nil {
		t.Error("corrupted header accepted")
	}
}

func TestIPv4Truncated(t *testing.T) {
	wire := mkIP(ueIP, serverIP, IPProtoTCP).SerializeTo(nil, make([]byte, 100))
	for _, cut := range []int{0, 10, 19} {
		var dec IPv4
		if err := dec.DecodeFromBytes(wire[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Total length beyond capture.
	var dec IPv4
	if err := dec.DecodeFromBytes(wire[:40]); err == nil {
		t.Error("short capture accepted")
	}
}

func TestIPv4BadVersion(t *testing.T) {
	wire := mkIP(ueIP, serverIP, IPProtoTCP).SerializeTo(nil, nil)
	wire[0] = 6<<4 | 5
	var dec IPv4
	if err := dec.DecodeFromBytes(wire); err == nil {
		t.Error("IPv6 version accepted by IPv4 decoder")
	}
}

func TestUDPRoundTripWithChecksum(t *testing.T) {
	u := &UDP{SrcPort: 40000, DstPort: 53}
	u.SetChecksumIPs(ueIP, serverIP)
	seg := u.SerializeTo(nil, []byte("dns query"))

	var dec UDP
	if err := dec.DecodeFromBytes(seg); err != nil {
		t.Fatal(err)
	}
	if dec.SrcPort != 40000 || dec.DstPort != 53 {
		t.Errorf("ports mangled: %+v", dec)
	}
	ip := mkIP(ueIP, serverIP, IPProtoUDP)
	if !dec.VerifyChecksum(ip) {
		t.Error("valid UDP checksum rejected")
	}
	seg[9] ^= 0x55 // corrupt payload
	var dec2 UDP
	if err := dec2.DecodeFromBytes(seg); err != nil {
		t.Fatal(err)
	}
	if dec2.VerifyChecksum(ip) {
		t.Error("corrupted UDP payload passed checksum")
	}
}

func TestUDPZeroChecksumPasses(t *testing.T) {
	u := &UDP{SrcPort: 1, DstPort: 2}
	seg := u.SerializeTo(nil, []byte("no checksum"))
	var dec UDP
	if err := dec.DecodeFromBytes(seg); err != nil {
		t.Fatal(err)
	}
	if !dec.VerifyChecksum(mkIP(ueIP, serverIP, IPProtoUDP)) {
		t.Error("zero checksum must pass")
	}
}

func TestTCPRoundTripWithChecksum(t *testing.T) {
	tc := &TCP{
		SrcPort: 443, DstPort: 55000,
		Seq: 0x01020304, Ack: 0x0a0b0c0d,
		Flags: TCPAck | TCPPsh, Window: 65535,
	}
	tc.SetChecksumIPs(serverIP, ueIP)
	seg := tc.SerializeTo(nil, []byte("tls record"))

	var dec TCP
	if err := dec.DecodeFromBytes(seg); err != nil {
		t.Fatal(err)
	}
	if dec.SrcPort != 443 || dec.Seq != 0x01020304 || dec.Flags != TCPAck|TCPPsh {
		t.Errorf("fields mangled: %+v", dec)
	}
	ip := mkIP(serverIP, ueIP, IPProtoTCP)
	if !dec.VerifyChecksum(ip) {
		t.Error("valid TCP checksum rejected")
	}
	if !bytes.Equal(dec.LayerPayload(), []byte("tls record")) {
		t.Error("payload mangled")
	}
}

func TestGTPv1URoundTrip(t *testing.T) {
	inner := mkIP(ueIP, serverIP, IPProtoTCP).SerializeTo(nil, []byte("data"))
	g := &GTPv1U{MessageType: GTPMsgGPDU, TEID: 0xdeadbeef, HasSeq: true, Sequence: 7}
	wire := g.SerializeTo(nil, inner)

	var dec GTPv1U
	if err := dec.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if dec.TEID != 0xdeadbeef || !dec.HasSeq || dec.Sequence != 7 {
		t.Errorf("fields mangled: %+v", dec)
	}
	if dec.NextLayerType() != LayerTypeIPv4 {
		t.Errorf("next layer = %v", dec.NextLayerType())
	}
	if !bytes.Equal(dec.LayerPayload(), inner) {
		t.Error("tunnelled packet mangled")
	}
}

func TestGTPv1UNoSeq(t *testing.T) {
	g := &GTPv1U{MessageType: GTPMsgGPDU, TEID: 1}
	wire := g.SerializeTo(nil, []byte("abc"))
	var dec GTPv1U
	if err := dec.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if dec.HasSeq {
		t.Error("sequence flag spuriously set")
	}
	if !bytes.Equal(dec.LayerPayload(), []byte("abc")) {
		t.Error("payload mangled")
	}
}

func TestGTPv1CRoundTrip(t *testing.T) {
	g := &GTPv1C{
		MessageType: GTPv1MsgCreatePDPRequest,
		TEID:        0x1111,
		Sequence:    99,
		DataTEID:    0x2222, HasDataTEID: true,
		SubscriberID: 0xfeedfacecafebeef, HasSubscriber: true,
		Location: ULI{AreaCode: 1234, CellID: 567890}, HasULI: true,
	}
	wire := g.SerializeTo(nil, nil)
	var dec GTPv1C
	if err := dec.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if dec.MessageType != GTPv1MsgCreatePDPRequest || dec.TEID != 0x1111 || dec.Sequence != 99 {
		t.Errorf("header mangled: %+v", dec)
	}
	if !dec.HasDataTEID || dec.DataTEID != 0x2222 {
		t.Errorf("data TEID mangled: %+v", dec)
	}
	if !dec.HasSubscriber || dec.SubscriberID != 0xfeedfacecafebeef {
		t.Errorf("subscriber mangled: %+v", dec)
	}
	if !dec.HasULI || dec.Location.AreaCode != 1234 || dec.Location.CellID != 567890 {
		t.Errorf("ULI mangled: %+v", dec)
	}
}

func TestGTPv2CRoundTrip(t *testing.T) {
	g := &GTPv2C{
		MessageType: GTPv2MsgCreateSessionRequest,
		TEID:        0xabcd,
		Sequence:    0x123456,
		DataTEID:    0x9999, HasDataTEID: true,
		SubscriberID: 42, HasSubscriber: true,
		Location: ULI{AreaCode: 77, CellID: 0x00ffeedd}, HasULI: true,
	}
	wire := g.SerializeTo(nil, nil)
	var dec GTPv2C
	if err := dec.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if dec.MessageType != GTPv2MsgCreateSessionRequest || dec.TEID != 0xabcd || dec.Sequence != 0x123456 {
		t.Errorf("header mangled: %+v", dec)
	}
	if !dec.HasULI || dec.Location.CellID != 0x00ffeedd || dec.Location.AreaCode != 77 {
		t.Errorf("ULI mangled: %+v", dec)
	}
	if !dec.HasSubscriber || dec.SubscriberID != 42 {
		t.Errorf("subscriber mangled: %+v", dec)
	}
}

func TestGTPCorruptionRejected(t *testing.T) {
	g := &GTPv2C{MessageType: GTPv2MsgCreateSessionRequest, TEID: 1,
		Location: ULI{AreaCode: 1, CellID: 2}, HasULI: true}
	wire := g.SerializeTo(nil, nil)
	// Truncate inside the IE region.
	var dec GTPv2C
	if err := dec.DecodeFromBytes(wire[:len(wire)-3]); err == nil {
		t.Error("truncated GTPv2-C accepted")
	}
	// Wrong version.
	wire[0] = 1<<5 | 0x08
	if err := dec.DecodeFromBytes(wire); err == nil {
		t.Error("wrong version accepted")
	}
}

// buildUserPlaneFrame assembles a full Gn/S5 user-plane frame:
// outer IP(SGW→PGW) / UDP 2152 / GTP-U / inner IP(UE→server) / TCP.
func buildUserPlaneFrame(t *testing.T, appPayload []byte) []byte {
	t.Helper()
	innerTCP := &TCP{SrcPort: 53211, DstPort: 443, Flags: TCPAck, Window: 1000}
	innerTCP.SetChecksumIPs(ueIP, serverIP)
	tcpSeg := innerTCP.SerializeTo(nil, appPayload)
	innerIP := mkIP(ueIP, serverIP, IPProtoTCP)
	innerPkt := innerIP.SerializeTo(nil, tcpSeg)

	gtpu := &GTPv1U{MessageType: GTPMsgGPDU, TEID: 0x42}
	tun := gtpu.SerializeTo(nil, innerPkt)

	udp := &UDP{SrcPort: 30000, DstPort: PortGTPU}
	seg := udp.SerializeTo(nil, tun)

	outer := mkIP(sgwIP, pgwIP, IPProtoUDP)
	return outer.SerializeTo(nil, seg)
}

func TestParserFullUserPlaneStack(t *testing.T) {
	frame := buildUserPlaneFrame(t, []byte("GET /"))
	var p Parser
	decoded, err := p.Decode(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []LayerType{LayerTypeIPv4, LayerTypeUDP, LayerTypeGTPv1U, LayerTypeIPv4, LayerTypeTCP, LayerTypePayload}
	if len(decoded) != len(want) {
		t.Fatalf("decoded %v, want %v", decoded, want)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decoded %v, want %v", decoded, want)
		}
	}
	if p.GTPU.TEID != 0x42 {
		t.Errorf("TEID = %x", p.GTPU.TEID)
	}
	if p.InnerIP.SrcIP != ueIP || p.InnerTCP.DstPort != 443 {
		t.Error("inner layers mangled")
	}
	if !bytes.Equal(p.Payload, []byte("GET /")) {
		t.Errorf("payload = %q", p.Payload)
	}
}

func TestParserControlPlaneStack(t *testing.T) {
	g := &GTPv2C{MessageType: GTPv2MsgCreateSessionRequest, TEID: 5, Sequence: 1,
		Location: ULI{AreaCode: 9, CellID: 1001}, HasULI: true,
		SubscriberID: 7, HasSubscriber: true}
	msg := g.SerializeTo(nil, nil)
	udp := &UDP{SrcPort: 31000, DstPort: PortGTPC}
	seg := udp.SerializeTo(nil, msg)
	frame := mkIP(sgwIP, pgwIP, IPProtoUDP).SerializeTo(nil, seg)

	var p Parser
	decoded, err := p.Decode(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if decoded[len(decoded)-1] != LayerTypeGTPv2C {
		t.Fatalf("decoded %v", decoded)
	}
	if p.GTPv2C.Location.CellID != 1001 || p.GTPv2C.SubscriberID != 7 {
		t.Errorf("control fields mangled: %+v", p.GTPv2C)
	}
}

func TestParserGTPv1CStack(t *testing.T) {
	g := &GTPv1C{MessageType: GTPv1MsgCreatePDPRequest, TEID: 5, Sequence: 1,
		Location: ULI{AreaCode: 9, CellID: 2002}, HasULI: true}
	msg := g.SerializeTo(nil, nil)
	udp := &UDP{SrcPort: 31000, DstPort: PortGTPC}
	seg := udp.SerializeTo(nil, msg)
	frame := mkIP(sgwIP, pgwIP, IPProtoUDP).SerializeTo(nil, seg)

	var p Parser
	decoded, err := p.Decode(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if decoded[len(decoded)-1] != LayerTypeGTPv1C {
		t.Fatalf("decoded %v", decoded)
	}
	if p.GTPv1C.Location.CellID != 2002 {
		t.Errorf("ULI mangled: %+v", p.GTPv1C)
	}
}

func TestParserRejectsGarbage(t *testing.T) {
	var p Parser
	if _, err := p.Decode([]byte{1, 2, 3}, nil); err == nil {
		t.Error("garbage accepted")
	}
	frame := buildUserPlaneFrame(t, []byte("x"))
	// Corrupt the GTP header region.
	frame[30] = 0xff
	if _, err := p.Decode(frame, nil); err == nil {
		// Depending on the byte this may decode differently; corrupt the
		// version nibble specifically.
		frame2 := buildUserPlaneFrame(t, []byte("x"))
		frame2[28] = 0x00 // GTP flags: version 0
		if _, err := p.Decode(frame2, nil); err == nil {
			t.Error("corrupted GTP accepted")
		}
	}
}

func TestFlowCanonicalization(t *testing.T) {
	ipAB := mkIP(ueIP, serverIP, IPProtoTCP)
	ipBA := mkIP(serverIP, ueIP, IPProtoTCP)
	fAB, revAB := FlowFromPacket(ipAB, 1000, 443)
	fBA, revBA := FlowFromPacket(ipBA, 443, 1000)
	if fAB != fBA {
		t.Errorf("directions map to different flows: %v vs %v", fAB, fBA)
	}
	if revAB == revBA {
		t.Error("reverse flags must differ between directions")
	}
}

func TestEndpointAndFlowStrings(t *testing.T) {
	e := Endpoint{IP: [4]byte{1, 2, 3, 4}, Port: 80}
	if e.String() != "1.2.3.4:80" {
		t.Errorf("endpoint string = %q", e.String())
	}
	f, _ := FlowFromPacket(mkIP(ueIP, serverIP, IPProtoTCP), 1, 2)
	if f.String() == "" {
		t.Error("flow string empty")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example-style check: checksum of a buffer with its
	// checksum field included must be zero.
	data := []byte{0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
		0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7}
	cs := Checksum(data)
	put16(data[10:], cs)
	if Checksum(data) != 0 {
		t.Errorf("self-check failed: %x", Checksum(data))
	}
	if cs != 0xb861 {
		t.Errorf("checksum = %04x, want b861 (classic example)", cs)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Any payload survives the full encapsulation round trip.
	f := func(seed uint64, n uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		payload := make([]byte, int(n)%600)
		for i := range payload {
			payload[i] = byte(rng.IntN(256))
		}
		innerTCP := &TCP{SrcPort: 1234, DstPort: 443}
		innerTCP.SetChecksumIPs(ueIP, serverIP)
		seg := innerTCP.SerializeTo(nil, payload)
		inner := mkIP(ueIP, serverIP, IPProtoTCP).SerializeTo(nil, seg)
		gtpu := &GTPv1U{MessageType: GTPMsgGPDU, TEID: uint32(seed)}
		tun := gtpu.SerializeTo(nil, inner)
		udp := &UDP{SrcPort: 30000, DstPort: PortGTPU}
		frame := mkIP(sgwIP, pgwIP, IPProtoUDP).SerializeTo(nil, udp.SerializeTo(nil, tun))

		var p Parser
		if _, err := p.Decode(frame, nil); err != nil {
			return false
		}
		return bytes.Equal(p.Payload, payload) &&
			p.GTPU.TEID == uint32(seed) &&
			p.InnerTCP.VerifyChecksum(&p.InnerIP)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParserUserPlane(b *testing.B) {
	frame := buildUserPlaneFrame(&testing.T{}, make([]byte, 1200))
	var p Parser
	decoded := make([]LayerType, 0, 8)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		var err error
		decoded, err = p.Decode(frame, decoded)
		if err != nil {
			b.Fatal(err)
		}
	}
}
