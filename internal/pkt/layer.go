// Package pkt implements the binary packet layers observed by the
// paper's passive probes on the Gn and S5/S8 interfaces: IPv4, UDP and
// TCP for transport, GTPv1-U for the user plane (the tunnelled
// subscriber traffic the probes account), and GTPv1-C / GTPv2-C for
// the control plane (PDP Context and EPS Bearer signalling carrying
// the User Location Information used for geo-referencing).
//
// The API follows the gopacket idiom: every layer implements
// DecodeFromBytes/SerializeTo/LayerType/NextLayerType/LayerPayload,
// and Parser provides the DecodingLayerParser-style fast path that
// decodes a raw frame into a reusable stack of layers without
// allocation.
package pkt

import "fmt"

// LayerType identifies a protocol layer.
type LayerType int

// The layer types understood by this package.
const (
	LayerTypeIPv4 LayerType = iota
	LayerTypeUDP
	LayerTypeTCP
	LayerTypeGTPv1U
	LayerTypeGTPv1C
	LayerTypeGTPv2C
	LayerTypePayload
	// LayerTypeNone terminates a decoding chain.
	LayerTypeNone
)

// String returns the conventional protocol name.
func (t LayerType) String() string {
	switch t {
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeGTPv1U:
		return "GTPv1-U"
	case LayerTypeGTPv1C:
		return "GTPv1-C"
	case LayerTypeGTPv2C:
		return "GTPv2-C"
	case LayerTypePayload:
		return "Payload"
	case LayerTypeNone:
		return "None"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// DecodingLayer is the contract every protocol layer implements.
type DecodingLayer interface {
	// DecodeFromBytes parses the layer from the given data, retaining
	// references into it (zero copy) where possible.
	DecodeFromBytes(data []byte) error
	// LayerType identifies the layer.
	LayerType() LayerType
	// NextLayerType reports the type of the payload layer, or
	// LayerTypeNone/LayerTypePayload when unknown.
	NextLayerType() LayerType
	// LayerPayload returns the bytes following this layer's header.
	LayerPayload() []byte
}

// SerializableLayer is implemented by layers that can also encode
// themselves.
type SerializableLayer interface {
	// SerializeTo appends the wire encoding of the layer (header +
	// given payload) to buf and returns the extended slice. Length and
	// checksum fields are fixed up from the payload.
	SerializeTo(buf []byte, payload []byte) []byte
}

// DecodeError reports a malformed packet.
type DecodeError struct {
	Layer  LayerType
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("pkt: %v decode: %s", e.Layer, e.Reason)
}

func errTooShort(t LayerType, need, have int) error {
	return &DecodeError{Layer: t, Reason: fmt.Sprintf("need %d bytes, have %d", need, have)}
}

// IP protocol numbers used by the stack.
const (
	IPProtoTCP = 6
	IPProtoUDP = 17
)

// Well-known GTP ports.
const (
	// PortGTPC carries GTP control traffic (both v1 and v2).
	PortGTPC = 2123
	// PortGTPU carries GTP user-plane tunnels.
	PortGTPU = 2152
)

func be16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
func put16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
func put32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
