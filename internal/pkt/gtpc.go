package pkt

import "fmt"

// ULI is the User Location Information carried in GTP-C signalling:
// the paper geo-references every IP session by inspecting it in PDP
// Contexts (3G) and EPS Bearers (4G). We carry the two fields the
// geo-referencing needs: the Routing/Tracking Area and the cell
// identity, which the probe maps to a commune through the operator's
// cell registry.
type ULI struct {
	// AreaCode is the Routing Area (3G) or Tracking Area (4G) code.
	AreaCode uint16
	// CellID is the Cell Global Identity (3G CGI) or E-UTRAN Cell
	// Identity (4G ECGI).
	CellID uint32
}

// GTPv1-C message types (3GPP TS 29.060) used by the session machine.
const (
	GTPv1MsgCreatePDPRequest  = 16
	GTPv1MsgCreatePDPResponse = 17
	GTPv1MsgUpdatePDPRequest  = 18
	GTPv1MsgUpdatePDPResponse = 19
	GTPv1MsgDeletePDPRequest  = 20
	GTPv1MsgDeletePDPResponse = 21
)

// GTPv1-C information element types (TV/TLV as per TS 29.060).
const (
	gtpv1IETEIDData = 16  // TV, 4 bytes: TEID for the data plane
	gtpv1IEULI      = 152 // TLV: user location information
	gtpv1IEIMSIHash = 200 // TLV, private extension: anonymized subscriber id
)

// GTPv1C is a GTP version 1 control message carrying a minimal IE set:
// the data-plane TEID, the anonymized subscriber identifier and the
// ULI. It models the Gn-interface PDP Context signalling of the 3G
// side of Fig. 1.
type GTPv1C struct {
	MessageType uint8
	TEID        uint32 // header TEID (control)
	Sequence    uint16

	// IEs (presence flags set on decode).
	DataTEID      uint32
	HasDataTEID   bool
	SubscriberID  uint64
	HasSubscriber bool
	Location      ULI
	HasULI        bool

	payload []byte
}

// LayerType implements DecodingLayer.
func (g *GTPv1C) LayerType() LayerType { return LayerTypeGTPv1C }

// LayerPayload implements DecodingLayer.
func (g *GTPv1C) LayerPayload() []byte { return g.payload }

// NextLayerType implements DecodingLayer.
func (g *GTPv1C) NextLayerType() LayerType { return LayerTypeNone }

// DecodeFromBytes implements DecodingLayer.
func (g *GTPv1C) DecodeFromBytes(data []byte) error {
	if len(data) < 12 {
		return errTooShort(LayerTypeGTPv1C, 12, len(data))
	}
	flags := data[0]
	if flags>>5 != 1 {
		return &DecodeError{LayerTypeGTPv1C, "version is not 1"}
	}
	g.MessageType = data[1]
	length := be16(data[2:])
	g.TEID = be32(data[4:])
	g.Sequence = be16(data[8:])
	end := 8 + int(length)
	if end > len(data) {
		return &DecodeError{LayerTypeGTPv1C, "length beyond captured data"}
	}
	if end < 12 {
		return &DecodeError{LayerTypeGTPv1C, "length below mandatory header"}
	}
	g.HasDataTEID, g.HasSubscriber, g.HasULI = false, false, false
	ies := data[12:end]
	for len(ies) > 0 {
		t := ies[0]
		if t < 128 {
			// TV format: fixed length per type.
			switch t {
			case gtpv1IETEIDData:
				if len(ies) < 5 {
					return &DecodeError{LayerTypeGTPv1C, "truncated TEID IE"}
				}
				g.DataTEID = be32(ies[1:])
				g.HasDataTEID = true
				ies = ies[5:]
			default:
				return &DecodeError{LayerTypeGTPv1C, fmt.Sprintf("unknown TV IE %d", t)}
			}
			continue
		}
		// TLV format.
		if len(ies) < 3 {
			return &DecodeError{LayerTypeGTPv1C, "truncated TLV IE header"}
		}
		l := int(be16(ies[1:]))
		if len(ies) < 3+l {
			return &DecodeError{LayerTypeGTPv1C, "truncated TLV IE body"}
		}
		body := ies[3 : 3+l]
		switch t {
		case gtpv1IEULI:
			if l != 6 {
				return &DecodeError{LayerTypeGTPv1C, "ULI IE length must be 6"}
			}
			g.Location.AreaCode = be16(body)
			g.Location.CellID = be32(body[2:])
			g.HasULI = true
		case gtpv1IEIMSIHash:
			if l != 8 {
				return &DecodeError{LayerTypeGTPv1C, "subscriber IE length must be 8"}
			}
			g.SubscriberID = uint64(be32(body))<<32 | uint64(be32(body[4:]))
			g.HasSubscriber = true
		default:
			// Unknown TLVs are skipped, as a real parser must.
		}
		ies = ies[3+l:]
	}
	g.payload = nil
	return nil
}

// SerializeTo implements SerializableLayer (payload is ignored: GTP-C
// messages are self-contained).
func (g *GTPv1C) SerializeTo(buf []byte, _ []byte) []byte {
	var ies []byte
	if g.HasDataTEID {
		ies = append(ies, gtpv1IETEIDData)
		var b [4]byte
		put32(b[:], g.DataTEID)
		ies = append(ies, b[:]...)
	}
	if g.HasSubscriber {
		ies = append(ies, gtpv1IEIMSIHash, 0, 8)
		var b [8]byte
		put32(b[:], uint32(g.SubscriberID>>32))
		put32(b[4:], uint32(g.SubscriberID))
		ies = append(ies, b[:]...)
	}
	if g.HasULI {
		ies = append(ies, gtpv1IEULI, 0, 6)
		var b [6]byte
		put16(b[:], g.Location.AreaCode)
		put32(b[2:], g.Location.CellID)
		ies = append(ies, b[:]...)
	}
	hdr := make([]byte, 12)
	hdr[0] = 1<<5 | 0x10 | 0x02 // version 1, PT, S
	hdr[1] = g.MessageType
	put16(hdr[2:], uint16(4+len(ies)))
	put32(hdr[4:], g.TEID)
	put16(hdr[8:], g.Sequence)
	buf = append(buf, hdr...)
	return append(buf, ies...)
}

// GTPv2-C message types (3GPP TS 29.274) for EPS Bearer signalling on
// the S5/S8 interface (4G side of Fig. 1).
const (
	GTPv2MsgCreateSessionRequest  = 32
	GTPv2MsgCreateSessionResponse = 33
	GTPv2MsgModifyBearerRequest   = 34
	GTPv2MsgModifyBearerResponse  = 35
	GTPv2MsgDeleteSessionRequest  = 36
	GTPv2MsgDeleteSessionResponse = 37
)

// GTPv2-C information element types.
const (
	gtpv2IEULI      = 86
	gtpv2IEFTEID    = 87
	gtpv2IEIMSIHash = 201 // private extension: anonymized subscriber id
)

// GTPv2C is a GTP version 2 control message with the minimal IE set
// used by the probe: F-TEID (data plane tunnel), subscriber hash, ULI.
type GTPv2C struct {
	MessageType uint8
	TEID        uint32
	Sequence    uint32 // 24 bits on the wire

	DataTEID      uint32
	HasDataTEID   bool
	SubscriberID  uint64
	HasSubscriber bool
	Location      ULI
	HasULI        bool

	payload []byte
}

// LayerType implements DecodingLayer.
func (g *GTPv2C) LayerType() LayerType { return LayerTypeGTPv2C }

// LayerPayload implements DecodingLayer.
func (g *GTPv2C) LayerPayload() []byte { return g.payload }

// NextLayerType implements DecodingLayer.
func (g *GTPv2C) NextLayerType() LayerType { return LayerTypeNone }

// DecodeFromBytes implements DecodingLayer.
func (g *GTPv2C) DecodeFromBytes(data []byte) error {
	if len(data) < 12 {
		return errTooShort(LayerTypeGTPv2C, 12, len(data))
	}
	flags := data[0]
	if flags>>5 != 2 {
		return &DecodeError{LayerTypeGTPv2C, "version is not 2"}
	}
	if flags&0x08 == 0 {
		return &DecodeError{LayerTypeGTPv2C, "TEID flag not set"}
	}
	g.MessageType = data[1]
	length := be16(data[2:])
	g.TEID = be32(data[4:])
	g.Sequence = be32(data[8:]) >> 8
	end := 4 + int(length)
	if end > len(data) {
		return &DecodeError{LayerTypeGTPv2C, "length beyond captured data"}
	}
	if end < 12 {
		return &DecodeError{LayerTypeGTPv2C, "length below mandatory header"}
	}
	g.HasDataTEID, g.HasSubscriber, g.HasULI = false, false, false
	ies := data[12:end]
	for len(ies) > 0 {
		if len(ies) < 4 {
			return &DecodeError{LayerTypeGTPv2C, "truncated IE header"}
		}
		t := ies[0]
		l := int(be16(ies[1:]))
		// ies[3] is instance, ignored
		if len(ies) < 4+l {
			return &DecodeError{LayerTypeGTPv2C, "truncated IE body"}
		}
		body := ies[4 : 4+l]
		switch t {
		case gtpv2IEULI:
			if l != 6 {
				return &DecodeError{LayerTypeGTPv2C, "ULI IE length must be 6"}
			}
			g.Location.AreaCode = be16(body)
			g.Location.CellID = be32(body[2:])
			g.HasULI = true
		case gtpv2IEFTEID:
			if l != 4 {
				return &DecodeError{LayerTypeGTPv2C, "F-TEID IE length must be 4"}
			}
			g.DataTEID = be32(body)
			g.HasDataTEID = true
		case gtpv2IEIMSIHash:
			if l != 8 {
				return &DecodeError{LayerTypeGTPv2C, "subscriber IE length must be 8"}
			}
			g.SubscriberID = uint64(be32(body))<<32 | uint64(be32(body[4:]))
			g.HasSubscriber = true
		default:
			// skip unknown IEs
		}
		ies = ies[4+l:]
	}
	g.payload = nil
	return nil
}

// SerializeTo implements SerializableLayer.
func (g *GTPv2C) SerializeTo(buf []byte, _ []byte) []byte {
	var ies []byte
	appendIE := func(t uint8, body []byte) {
		var h [4]byte
		h[0] = t
		put16(h[1:], uint16(len(body)))
		ies = append(ies, h[:]...)
		ies = append(ies, body...)
	}
	if g.HasDataTEID {
		var b [4]byte
		put32(b[:], g.DataTEID)
		appendIE(gtpv2IEFTEID, b[:])
	}
	if g.HasSubscriber {
		var b [8]byte
		put32(b[:], uint32(g.SubscriberID>>32))
		put32(b[4:], uint32(g.SubscriberID))
		appendIE(gtpv2IEIMSIHash, b[:])
	}
	if g.HasULI {
		var b [6]byte
		put16(b[:], g.Location.AreaCode)
		put32(b[2:], g.Location.CellID)
		appendIE(gtpv2IEULI, b[:])
	}
	hdr := make([]byte, 12)
	hdr[0] = 2<<5 | 0x08
	hdr[1] = g.MessageType
	put16(hdr[2:], uint16(8+len(ies)))
	put32(hdr[4:], g.TEID)
	put32(hdr[8:], g.Sequence<<8)
	buf = append(buf, hdr...)
	return append(buf, ies...)
}
