package pkt

import "fmt"

// Parser is the DecodingLayerParser-style fast path: it owns one
// instance of every layer and decodes a frame into them without
// allocating, appending the encountered layer types to a caller-owned
// slice. A Parser is not safe for concurrent use; probes keep one per
// goroutine.
type Parser struct {
	// The layer instances, valid after Decode for every type listed in
	// the decoded slice.
	OuterIP IPv4
	UDP     UDP
	TCP     TCP
	GTPU    GTPv1U
	GTPv1C  GTPv1C
	GTPv2C  GTPv2C
	// InnerIP/InnerTCP/InnerUDP hold the subscriber packet found inside
	// a GTP-U tunnel.
	InnerIP  IPv4
	InnerTCP TCP
	InnerUDP UDP
	// Payload is the innermost undecoded data.
	Payload []byte
}

// Decode parses data starting at the outer IPv4 layer, following
// NextLayerType until no further decoder applies. It appends the layer
// types it decoded to decoded (resetting it first) and returns it.
// Inner (tunnelled) layers are reported with the same LayerType
// constants; their position after LayerTypeGTPv1U disambiguates.
func (p *Parser) Decode(data []byte, decoded []LayerType) ([]LayerType, error) {
	decoded = decoded[:0]
	p.Payload = nil

	if err := p.OuterIP.DecodeFromBytes(data); err != nil {
		return decoded, err
	}
	decoded = append(decoded, LayerTypeIPv4)
	next := p.OuterIP.NextLayerType()
	rest := p.OuterIP.LayerPayload()

	inTunnel := false
	for {
		switch next {
		case LayerTypeUDP:
			u := &p.UDP
			if inTunnel {
				u = &p.InnerUDP
			}
			if err := u.DecodeFromBytes(rest); err != nil {
				return decoded, err
			}
			decoded = append(decoded, LayerTypeUDP)
			if inTunnel {
				// Never demultiplex GTP inside a tunnel: user traffic on
				// port 2152 must not recurse.
				next = LayerTypePayload
			} else {
				next = u.NextLayerType()
			}
			rest = u.LayerPayload()
		case LayerTypeTCP:
			t := &p.TCP
			if inTunnel {
				t = &p.InnerTCP
			}
			if err := t.DecodeFromBytes(rest); err != nil {
				return decoded, err
			}
			decoded = append(decoded, LayerTypeTCP)
			next = LayerTypePayload
			rest = t.LayerPayload()
		case LayerTypeGTPv1U:
			if err := p.GTPU.DecodeFromBytes(rest); err != nil {
				return decoded, err
			}
			decoded = append(decoded, LayerTypeGTPv1U)
			next = p.GTPU.NextLayerType()
			rest = p.GTPU.LayerPayload()
			if next == LayerTypeIPv4 {
				inTunnel = true
				if err := p.InnerIP.DecodeFromBytes(rest); err != nil {
					return decoded, err
				}
				decoded = append(decoded, LayerTypeIPv4)
				next = p.InnerIP.NextLayerType()
				rest = p.InnerIP.LayerPayload()
			}
		case LayerTypeGTPv1C:
			if err := p.GTPv1C.DecodeFromBytes(rest); err != nil {
				return decoded, err
			}
			decoded = append(decoded, LayerTypeGTPv1C)
			return decoded, nil
		case LayerTypeGTPv2C:
			if err := p.GTPv2C.DecodeFromBytes(rest); err != nil {
				return decoded, err
			}
			decoded = append(decoded, LayerTypeGTPv2C)
			return decoded, nil
		case LayerTypePayload:
			p.Payload = rest
			if len(rest) > 0 {
				decoded = append(decoded, LayerTypePayload)
			}
			return decoded, nil
		case LayerTypeNone:
			return decoded, nil
		default:
			return decoded, fmt.Errorf("pkt: no decoder for %v", next)
		}
	}
}

// Endpoint identifies one side of a flow (gopacket's Endpoint idiom,
// restricted to IPv4 + port).
type Endpoint struct {
	IP   [4]byte
	Port uint16
}

// String formats the endpoint as ip:port.
func (e Endpoint) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", e.IP[0], e.IP[1], e.IP[2], e.IP[3], e.Port)
}

// Flow is a bidirectional transport flow key: the 5-tuple with
// endpoints ordered canonically so both directions map to the same
// key.
type Flow struct {
	A, B     Endpoint
	Protocol uint8
}

// FlowFromPacket builds the canonical flow of a decoded subscriber
// packet. reverse reports whether (src, dst) were swapped to
// canonical order — i.e. whether the packet travels B→A.
func FlowFromPacket(ip *IPv4, srcPort, dstPort uint16) (f Flow, reverse bool) {
	src := Endpoint{IP: ip.SrcIP, Port: srcPort}
	dst := Endpoint{IP: ip.DstIP, Port: dstPort}
	f.Protocol = ip.Protocol
	if endpointLess(src, dst) {
		f.A, f.B = src, dst
		return f, false
	}
	f.A, f.B = dst, src
	return f, true
}

func endpointLess(a, b Endpoint) bool {
	for i := 0; i < 4; i++ {
		if a.IP[i] != b.IP[i] {
			return a.IP[i] < b.IP[i]
		}
	}
	return a.Port < b.Port
}

// String formats the flow.
func (f Flow) String() string {
	proto := "?"
	switch f.Protocol {
	case IPProtoTCP:
		proto = "tcp"
	case IPProtoUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s %v <-> %v", proto, f.A, f.B)
}
