package pkt

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestParserNeverPanicsOnRandomBytes is the probe's survival property:
// a passive tap sees arbitrary garbage (corruption, truncation, alien
// protocols) and must reject it with an error, never a panic.
func TestParserNeverPanicsOnRandomBytes(t *testing.T) {
	var p Parser
	decoded := make([]LayerType, 0, 8)
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %x: %v", data, r)
			}
		}()
		decoded, _ = p.Decode(data, decoded)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanicsOnMutatedFrames flips bytes of valid frames —
// the nastier corpus, since prefixes parse correctly.
func TestParserNeverPanicsOnMutatedFrames(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 100))
	base := buildUserPlaneFrame(t, []byte("payload bytes here"))
	ctrl := func() []byte {
		g := &GTPv2C{MessageType: GTPv2MsgCreateSessionRequest, TEID: 1, Sequence: 2,
			DataTEID: 3, HasDataTEID: true,
			Location: ULI{AreaCode: 4, CellID: 5}, HasULI: true}
		seg := (&UDP{SrcPort: 1000, DstPort: PortGTPC}).SerializeTo(nil, g.SerializeTo(nil, nil))
		return mkIP(sgwIP, pgwIP, IPProtoUDP).SerializeTo(nil, seg)
	}()

	var p Parser
	decoded := make([]LayerType, 0, 8)
	for trial := 0; trial < 3000; trial++ {
		src := base
		if trial%2 == 1 {
			src = ctrl
		}
		frame := append([]byte(nil), src...)
		// 1-4 random byte mutations.
		for m := 0; m <= rng.IntN(4); m++ {
			frame[rng.IntN(len(frame))] ^= byte(1 + rng.IntN(255))
		}
		// Occasional truncation.
		if rng.IntN(4) == 0 {
			frame = frame[:rng.IntN(len(frame))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on mutated frame (trial %d): %v", trial, r)
				}
			}()
			decoded, _ = p.Decode(frame, decoded)
		}()
	}
}

// TestLayerDecodersNeverPanic exercises each decoder directly with
// arbitrary input.
func TestLayerDecodersNeverPanic(t *testing.T) {
	decoders := []DecodingLayer{&IPv4{}, &UDP{}, &TCP{}, &GTPv1U{}, &GTPv1C{}, &GTPv2C{}}
	f := func(data []byte) bool {
		for _, d := range decoders {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%v panicked: %v", d.LayerType(), r)
					}
				}()
				_ = d.DecodeFromBytes(data)
			}()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
