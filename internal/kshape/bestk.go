package kshape

import (
	"fmt"
	"math"
)

// BestKResult is the outcome of a silhouette-guided model selection.
type BestKResult struct {
	K          int
	Silhouette float64
	Result     *Result
	// ByK lists the silhouette of every candidate k (NaN when the
	// clustering degenerated), for Fig. 5-style inspection.
	ByK map[int]float64
}

// SelectK runs k-Shape for every k in [kMin, kMax] and returns the
// clustering with the best mean silhouette under the shape-based
// distance. When no k clearly wins — silhouettes decreasing in k with
// the maximum at kMin, the paper's Fig. 5 situation — the caller
// should treat the selection as evidence *against* a natural grouping
// rather than as a model choice; Decisive reports that distinction.
func SelectK(series [][]float64, kMin, kMax int, opts Options) (*BestKResult, error) {
	if kMin < 2 || kMax < kMin || kMax >= len(series) {
		return nil, fmt.Errorf("kshape: SelectK range [%d, %d] invalid for %d series", kMin, kMax, len(series))
	}
	best := &BestKResult{K: 0, Silhouette: math.Inf(-1), ByK: map[int]float64{}}
	for k := kMin; k <= kMax; k++ {
		res, err := Cluster(series, k, opts)
		if err != nil {
			return nil, err
		}
		sil, err := silhouetteOf(series, res, k, opts)
		if err != nil {
			best.ByK[k] = math.NaN()
			continue
		}
		best.ByK[k] = sil
		if sil > best.Silhouette {
			best.K, best.Silhouette, best.Result = k, sil, res
		}
	}
	if best.Result == nil {
		return nil, fmt.Errorf("kshape: every k in [%d, %d] degenerated", kMin, kMax)
	}
	return best, nil
}

// Decisive reports whether the selected k actually dominates: its
// silhouette must beat the runner-up by margin. The Fig. 5 pattern
// (monotone decay from kMin) is not decisive.
func (r *BestKResult) Decisive(margin float64) bool {
	runnerUp := math.Inf(-1)
	for k, s := range r.ByK {
		if k != r.K && !math.IsNaN(s) && s > runnerUp {
			runnerUp = s
		}
	}
	return r.Silhouette-runnerUp >= margin
}

// silhouetteOf computes the mean silhouette of a k-Shape result using
// the same normalization the clustering used.
func silhouetteOf(series [][]float64, res *Result, k int, opts Options) (float64, error) {
	data := series
	if opts.ZNormalize {
		data = make([][]float64, len(series))
		for i, s := range series {
			data[i] = zNorm(s)
		}
	}
	// Inline mean-silhouette with SBD (avoids a dependency cycle with
	// the cvi package, which imports nothing from kshape but is used
	// together with it by callers).
	n := len(data)
	counts := make([]int, k)
	for _, a := range res.Assign {
		counts[a]++
	}
	var total float64
	for i := 0; i < n; i++ {
		own := res.Assign[i]
		if counts[own] == 1 {
			continue
		}
		sums := make([]float64, k)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d, _ := SBD(data[i], data[j])
			sums[res.Assign[j]] += d
		}
		a := sums[own] / float64(counts[own]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if denom := math.Max(a, b); denom > 0 {
			total += (b - a) / denom
		}
	}
	return total / float64(n), nil
}

// zNorm is a local z-normalization (duplicated from timeseries to keep
// this file free of imports beyond the stdlib).
func zNorm(x []float64) []float64 {
	out := make([]float64, len(x))
	var mean float64
	for _, v := range x {
		mean += v
	}
	if len(x) == 0 {
		return out
	}
	mean /= float64(len(x))
	var variance float64
	for _, v := range x {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(x))
	std := math.Sqrt(variance)
	if std == 0 {
		return out
	}
	for i, v := range x {
		out[i] = (v - mean) / std
	}
	return out
}
