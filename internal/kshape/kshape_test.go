package kshape

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSBDIdentity(t *testing.T) {
	x := []float64{1, 2, 3, 2, 1, 0, -1}
	d, shift := SBD(x, x)
	if math.Abs(d) > 1e-10 || shift != 0 {
		t.Errorf("SBD(x,x) = %v shift %d", d, shift)
	}
}

func TestSBDShiftInvariance(t *testing.T) {
	// SBD of a shape and its shifted copy must be ~0 with the right lag.
	base := make([]float64, 64)
	for i := 20; i < 30; i++ {
		base[i] = math.Sin(float64(i-20) / 3)
	}
	shifted := Shift(base, 7)
	d, lag := SBD(base, shifted)
	if d > 1e-9 {
		t.Errorf("SBD to shifted copy = %v", d)
	}
	if lag != -7 {
		t.Errorf("alignment lag = %d, want -7", lag)
	}
}

func TestSBDRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		n := rng.IntN(60) + 4
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		d, _ := SBD(x, y)
		dr, _ := SBD(y, x)
		// Range [0, 2] and symmetry of the distance value.
		return d >= -1e-9 && d <= 2+1e-9 && math.Abs(d-dr) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSBDAnticorrelated(t *testing.T) {
	x := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	y := []float64{-1, 1, -1, 1, -1, 1, -1, 1}
	d, _ := SBD(x, y)
	// Anti-phase square waves still align at ±1 shift, so SBD stays
	// low; at zero shift the correlation would be -1. What we check is
	// that the maximum NCC logic picks the aligned shift.
	if d > 0.2 {
		t.Errorf("SBD of shiftable anti-phase = %v", d)
	}
}

func TestShift(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Shift(x, 1); got[0] != 0 || got[1] != 1 || got[3] != 3 {
		t.Errorf("Shift(+1) = %v", got)
	}
	if got := Shift(x, -2); got[0] != 3 || got[1] != 4 || got[2] != 0 {
		t.Errorf("Shift(-2) = %v", got)
	}
	if got := Shift(x, 10); got[0] != 0 || got[3] != 0 {
		t.Errorf("Shift beyond length = %v", got)
	}
	if got := Shift(x, 0); got[0] != 1 || got[3] != 4 {
		t.Errorf("Shift(0) = %v", got)
	}
}

func TestAlignTo(t *testing.T) {
	ref := make([]float64, 32)
	ref[10] = 1
	y := make([]float64, 32)
	y[4] = 1
	aligned := AlignTo(ref, y)
	if aligned[10] != 1 {
		t.Errorf("AlignTo did not move the pulse: %v", aligned)
	}
	// Aligning zero signals must not panic and must keep values.
	z := AlignTo(make([]float64, 4), []float64{1, 2, 3, 4})
	if z[0] != 1 {
		t.Errorf("AlignTo with zero ref altered input: %v", z)
	}
}

func TestDistanceMatrixSymmetric(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	series := make([][]float64, 6)
	for i := range series {
		series[i] = make([]float64, 32)
		for j := range series[i] {
			series[i][j] = rng.NormFloat64()
		}
	}
	m := DistanceMatrix(series)
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("diagonal [%d] = %v", i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

// makeShapeFamilies builds nf families of series: each family is a
// distinctive base shape plus small noise and random circular-ish
// shifts, the canonical k-Shape separability scenario.
func makeShapeFamilies(rng *rand.Rand, nf, perFamily, m int, shiftMax int) ([][]float64, []int) {
	var series [][]float64
	var labels []int
	for f := 0; f < nf; f++ {
		base := make([]float64, m)
		for i := range base {
			x := float64(i) / float64(m) * 2 * math.Pi
			switch f {
			case 0:
				base[i] = math.Sin(3 * x)
			case 1:
				base[i] = math.Abs(math.Mod(float64(i), 20) - 10)
			default:
				base[i] = math.Sin(x) + 0.8*math.Cos(5*x+float64(f))
			}
		}
		for p := 0; p < perFamily; p++ {
			s := Shift(base, rng.IntN(2*shiftMax+1)-shiftMax)
			for i := range s {
				s[i] += rng.NormFloat64() * 0.05
			}
			series = append(series, s)
			labels = append(labels, f)
		}
	}
	return series, labels
}

func TestClusterSeparatesShapeFamilies(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 20))
	series, labels := makeShapeFamilies(rng, 2, 8, 96, 6)
	res, err := Cluster(series, 2, Options{Seed: 42, ZNormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !clusteringMatchesLabels(res.Assign, labels, 2) {
		t.Errorf("k-Shape failed to separate 2 shifted families: %v vs %v", res.Assign, labels)
	}
}

// clusteringMatchesLabels checks the assignment equals the ground truth
// up to a permutation of cluster ids.
func clusteringMatchesLabels(assign, labels []int, k int) bool {
	if len(assign) != len(labels) {
		return false
	}
	// Try all permutations for small k (k <= 3 here).
	perms := [][]int{{0, 1}, {1, 0}}
	if k == 3 {
		perms = [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	}
	for _, p := range perms {
		ok := true
		for i := range assign {
			if p[assign[i]] != labels[i] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestClusterShiftInvarianceBeatsKMeans(t *testing.T) {
	// Families differ only by shape; members are heavily shifted. k-Shape
	// should recover the families; Euclidean k-means typically cannot.
	rng := rand.New(rand.NewPCG(77, 88))
	series, labels := makeShapeFamilies(rng, 2, 10, 128, 20)
	ks, err := Cluster(series, 2, Options{Seed: 1, ZNormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !clusteringMatchesLabels(ks.Assign, labels, 2) {
		t.Error("k-Shape failed on heavily shifted families")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := Cluster(nil, 2, Options{}); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := Cluster([][]float64{{1, 2}}, 2, Options{}); err == nil {
		t.Error("k > n: want error")
	}
	if _, err := Cluster([][]float64{{1, 2}, {1}}, 1, Options{}); err == nil {
		t.Error("ragged input: want error")
	}
	if _, err := Cluster([][]float64{{}, {}}, 1, Options{}); err == nil {
		t.Error("zero-length series: want error")
	}
	if _, err := Cluster([][]float64{{1, 2}, {3, 4}}, 0, Options{}); err == nil {
		t.Error("k=0: want error")
	}
}

func TestClusterDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	series, _ := makeShapeFamilies(rng, 3, 5, 64, 5)
	a, err := Cluster(series, 3, Options{Seed: 9, ZNormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(series, 3, Options{Seed: 9, ZNormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
	if a.Inertia != b.Inertia {
		t.Error("same seed produced different inertia")
	}
}

func TestClusterKEqualsN(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	series, _ := makeShapeFamilies(rng, 2, 3, 48, 3)
	res, err := Cluster(series, len(series), Options{Seed: 3, ZNormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, a := range res.Assign {
		seen[a] = true
	}
	if len(seen) != len(series) {
		t.Errorf("k=n should give singleton clusters, got %d distinct", len(seen))
	}
	if res.Inertia > 1e-6 {
		t.Errorf("singleton clustering inertia = %v, want ~0", res.Inertia)
	}
}

func TestAllAssignmentsInRangeProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 51))
		n := rng.IntN(10) + 4
		k := int(kRaw)%n + 1
		series := make([][]float64, n)
		for i := range series {
			series[i] = make([]float64, 32)
			for j := range series[i] {
				series[i][j] = rng.NormFloat64()
			}
		}
		res, err := Cluster(series, k, Options{Seed: seed, ZNormalize: true})
		if err != nil {
			return false
		}
		counts := make([]int, k)
		for _, a := range res.Assign {
			if a < 0 || a >= k {
				return false
			}
			counts[a]++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestKMeansBasic(t *testing.T) {
	// Two well-separated constant-level groups, no shifting: k-means
	// must solve this trivially (without z-normalization, which would
	// erase level differences).
	series := [][]float64{
		{1, 1.1, 0.9, 1, 1.05, 0.95},
		{1.02, 0.98, 1, 1.1, 0.9, 1},
		{9, 9.1, 8.9, 9, 9.05, 8.95},
		{9.02, 8.98, 9, 9.1, 8.9, 9},
	}
	res, err := KMeans(series, 2, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[2] != res.Assign[3] || res.Assign[0] == res.Assign[2] {
		t.Errorf("k-means assignment = %v", res.Assign)
	}
}

func TestKMeansFailsOnShiftedShapes(t *testing.T) {
	// Demonstrates the ablation: with large shifts, Euclidean k-means
	// mixes the families that k-Shape separates (this is probabilistic,
	// so we only require that k-Shape's inertia-based match succeeds
	// while k-means mismatches on at least one of several seeds).
	rng := rand.New(rand.NewPCG(13, 14))
	series, labels := makeShapeFamilies(rng, 2, 10, 128, 24)
	kmeansFailed := false
	for seed := uint64(0); seed < 5; seed++ {
		km, err := KMeans(series, 2, Options{Seed: seed, ZNormalize: true})
		if err != nil {
			t.Fatal(err)
		}
		if !clusteringMatchesLabels(km.Assign, labels, 2) {
			kmeansFailed = true
			break
		}
	}
	if !kmeansFailed {
		t.Skip("k-means solved the shifted families on all seeds (rare but possible)")
	}
}

func TestDistAdapters(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{0, 1, 0}
	if EuclideanDist(a, b) != math.Sqrt(2) {
		t.Error("EuclideanDist wrong")
	}
	if d := SBDDist(a, a); math.Abs(d) > 1e-10 {
		t.Errorf("SBDDist(a,a) = %v", d)
	}
}
