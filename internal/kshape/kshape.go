package kshape

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"repro/internal/mat"
	"repro/internal/timeseries"
)

// Options configures a clustering run.
type Options struct {
	// MaxIter bounds the assignment/refinement loop (default 100).
	MaxIter int
	// Seed makes the random initial assignment reproducible.
	Seed uint64
	// ZNormalize applies z-normalization to every input series before
	// clustering (the canonical k-Shape preprocessing). Enabled by the
	// high-level pipeline; disable only for pre-normalized input.
	ZNormalize bool
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	return o
}

// Result is the outcome of a clustering run.
type Result struct {
	// Assign maps each input series to its cluster in [0, K).
	Assign []int
	// Centroids holds one extracted shape per cluster, z-normalized.
	Centroids [][]float64
	// Iterations is the number of refinement rounds executed.
	Iterations int
	// Inertia is the sum of SBD distances of members to their centroid
	// (lower is tighter).
	Inertia float64
}

// Cluster runs k-Shape over the series set. All series must share the
// same positive length. It returns an error for k < 1, k > len(series)
// or inconsistent lengths.
func Cluster(series [][]float64, k int, opts Options) (*Result, error) {
	if err := validate(series, k); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	n := len(series)
	m := len(series[0])

	data := series
	if opts.ZNormalize {
		data = make([][]float64, n)
		for i, s := range series {
			data[i] = timeseries.ZNormalize(s)
		}
	}

	rng := rand.New(rand.NewPCG(opts.Seed, 0x6b736861)) // "ksha"
	assign := make([]int, n)
	for i := range assign {
		assign[i] = rng.IntN(k)
	}
	centroids := make([][]float64, k)
	for c := range centroids {
		centroids[c] = make([]float64, m)
	}

	var iter int
	for iter = 0; iter < opts.MaxIter; iter++ {
		// Refinement: extract the shape of every cluster.
		for c := 0; c < k; c++ {
			centroids[c] = extractShape(data, assign, c, centroids[c])
		}
		// Assignment: move each series to the closest shape.
		changed := false
		for i, s := range data {
			best, bestDist := assign[i], 2.1 // SBD upper bound is 2
			for c := 0; c < k; c++ {
				d, _ := SBD(centroids[c], s)
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		fixEmptyClusters(data, assign, centroids, k, rng)
		if !changed {
			iter++
			break
		}
	}

	res := &Result{Assign: assign, Centroids: centroids, Iterations: iter}
	for i, s := range data {
		d, _ := SBD(centroids[assign[i]], s)
		res.Inertia += d
	}
	return res, nil
}

func validate(series [][]float64, k int) error {
	if len(series) == 0 {
		return errors.New("kshape: no input series")
	}
	if k < 1 || k > len(series) {
		return fmt.Errorf("kshape: k=%d outside [1, %d]", k, len(series))
	}
	m := len(series[0])
	if m == 0 {
		return errors.New("kshape: zero-length series")
	}
	for i, s := range series {
		if len(s) != m {
			return fmt.Errorf("kshape: series %d has length %d, want %d", i, len(s), m)
		}
	}
	return nil
}

// extractShape computes the new centroid of cluster c: the dominant
// eigenvector of Qᵀ·(XᵀX)·Q where X stacks the cluster members aligned
// to the previous centroid and Q = I - (1/m)·1 centers the columns.
func extractShape(data [][]float64, assign []int, c int, prev []float64) []float64 {
	m := len(prev)
	var members [][]float64
	for i, a := range assign {
		if a == c {
			members = append(members, AlignTo(prev, data[i]))
		}
	}
	if len(members) == 0 {
		return make([]float64, m)
	}
	// S = XᵀX (m×m), built directly to avoid materializing X twice.
	s := mat.NewDense(m, m)
	for _, row := range members {
		zr := timeseries.ZNormalize(row)
		for a := 0; a < m; a++ {
			va := zr[a]
			if va == 0 {
				continue
			}
			out := s.Data[a*m : (a+1)*m]
			for b := 0; b < m; b++ {
				out[b] += va * zr[b]
			}
		}
	}
	// M = Qᵀ·S·Q with Q = I - (1/m)·ones. Expanding, M = S - 1·rᵀ - r·1ᵀ + g·1·1ᵀ
	// where r is the column-mean vector of S and g the grand mean.
	colMean := make([]float64, m)
	var grand float64
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			colMean[b] += s.At(a, b)
		}
	}
	for b := 0; b < m; b++ {
		colMean[b] /= float64(m)
		grand += colMean[b]
	}
	grand /= float64(m)
	mm := mat.NewDense(m, m)
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			mm.Set(a, b, s.At(a, b)-colMean[a]-colMean[b]+grand)
		}
	}
	// Dominant eigenvector; M is PSD so power iteration is safe.
	_, vec, err := mat.PowerIteration(mm, prev, 200, 1e-10)
	if err != nil {
		return make([]float64, m)
	}
	// The eigenvector's sign is arbitrary: pick the orientation closer
	// to the cluster members.
	centroid := timeseries.ZNormalize(vec)
	flipped := make([]float64, m)
	for i, v := range centroid {
		flipped[i] = -v
	}
	var dPlus, dMinus float64
	for _, row := range members {
		dp, _ := SBD(centroid, row)
		dm, _ := SBD(flipped, row)
		dPlus += dp
		dMinus += dm
	}
	if dMinus < dPlus {
		return flipped
	}
	return centroid
}

// fixEmptyClusters reassigns one random member into any empty cluster
// so the algorithm keeps exactly k groups (standard k-Shape practice).
func fixEmptyClusters(data [][]float64, assign []int, centroids [][]float64, k int, rng *rand.Rand) {
	counts := make([]int, k)
	for _, a := range assign {
		counts[a]++
	}
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			continue
		}
		// Steal a member from the largest cluster.
		largest := 0
		for j := range counts {
			if counts[j] > counts[largest] {
				largest = j
			}
		}
		if counts[largest] <= 1 {
			continue
		}
		candidates := make([]int, 0, counts[largest])
		for i, a := range assign {
			if a == largest {
				candidates = append(candidates, i)
			}
		}
		pick := candidates[rng.IntN(len(candidates))]
		assign[pick] = c
		counts[largest]--
		counts[c]++
		copy(centroids[c], data[pick])
	}
}
