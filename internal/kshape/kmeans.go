package kshape

import (
	"math"
	"math/rand/v2"

	"repro/internal/timeseries"
)

// KMeans clusters the series with Lloyd's algorithm under the Euclidean
// distance on (optionally z-normalized) values. It serves as the
// baseline the k-Shape paper compares against and that our ablation
// bench (BenchmarkKShapeVsKMeans) reproduces: Euclidean k-means is not
// shift-invariant, so phase-offset copies of the same shape land in
// different clusters.
func KMeans(series [][]float64, k int, opts Options) (*Result, error) {
	if err := validate(series, k); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	n := len(series)
	m := len(series[0])

	data := series
	if opts.ZNormalize {
		data = make([][]float64, n)
		for i, s := range series {
			data[i] = timeseries.ZNormalize(s)
		}
	}

	rng := rand.New(rand.NewPCG(opts.Seed, 0x6b6d6e73)) // "kmns"
	assign := make([]int, n)
	for i := range assign {
		assign[i] = rng.IntN(k)
	}
	centroids := make([][]float64, k)
	for c := range centroids {
		centroids[c] = make([]float64, m)
	}

	var iter int
	for iter = 0; iter < opts.MaxIter; iter++ {
		for c := 0; c < k; c++ {
			meanOf(data, assign, c, centroids[c])
		}
		changed := false
		for i, s := range data {
			best, bestDist := assign[i], math.Inf(1)
			for c := 0; c < k; c++ {
				d := euclidean(centroids[c], s)
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		fixEmptyClusters(data, assign, centroids, k, rng)
		if !changed {
			iter++
			break
		}
	}

	res := &Result{Assign: assign, Centroids: centroids, Iterations: iter}
	for i, s := range data {
		res.Inertia += euclidean(centroids[assign[i]], s)
	}
	return res, nil
}

func meanOf(data [][]float64, assign []int, c int, out []float64) {
	for i := range out {
		out[i] = 0
	}
	count := 0
	for i, a := range assign {
		if a != c {
			continue
		}
		count++
		for j, v := range data[i] {
			out[j] += v
		}
	}
	if count == 0 {
		return
	}
	for i := range out {
		out[i] /= float64(count)
	}
}

func euclidean(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// EuclideanDist exposes the baseline distance for the validity-index
// computations of the ablation experiments.
func EuclideanDist(a, b []float64) float64 { return euclidean(a, b) }

// SBDDist adapts SBD to the plain distance-function signature used by
// the cluster validity indices.
func SBDDist(a, b []float64) float64 {
	d, _ := SBD(a, b)
	return d
}
