package kshape

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestSelectKFindsTrueK(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	series, _ := makeShapeFamilies(rng, 3, 6, 96, 4)
	best, err := SelectK(series, 2, 6, Options{Seed: 5, ZNormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if best.K != 3 {
		t.Errorf("SelectK chose k=%d (silhouettes %v), want 3", best.K, best.ByK)
	}
	if best.Silhouette < 0.5 {
		t.Errorf("best silhouette = %v, want strong structure", best.Silhouette)
	}
	if !best.Decisive(0.05) {
		t.Errorf("3 clear families should be decisive: %v", best.ByK)
	}
	if len(best.Result.Assign) != len(series) {
		t.Error("result missing assignments")
	}
}

func TestSelectKIndecisiveOnUnstructuredData(t *testing.T) {
	// 20 unrelated random walks: no natural k (the paper's situation).
	rng := rand.New(rand.NewPCG(31, 32))
	series := make([][]float64, 20)
	for i := range series {
		series[i] = make([]float64, 96)
		v := 0.0
		for j := range series[i] {
			v += rng.NormFloat64()
			series[i][j] = v
		}
	}
	best, err := SelectK(series, 2, 10, Options{Seed: 1, ZNormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if best.Decisive(0.15) {
		t.Errorf("random walks should not produce a decisive k: best %d with %v",
			best.K, best.ByK)
	}
}

func TestSelectKValidation(t *testing.T) {
	series := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if _, err := SelectK(series, 1, 2, Options{}); err == nil {
		t.Error("kMin < 2: want error")
	}
	if _, err := SelectK(series, 2, 5, Options{}); err == nil {
		t.Error("kMax >= n: want error")
	}
	if _, err := SelectK(series, 3, 2, Options{}); err == nil {
		t.Error("kMax < kMin: want error")
	}
}

func TestSelectKByKComplete(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	series, _ := makeShapeFamilies(rng, 2, 5, 64, 3)
	best, err := SelectK(series, 2, 5, Options{Seed: 2, ZNormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 5; k++ {
		if _, ok := best.ByK[k]; !ok {
			t.Errorf("ByK missing k=%d", k)
		}
	}
	for k, s := range best.ByK {
		if !math.IsNaN(s) && (s < -1 || s > 1) {
			t.Errorf("silhouette out of range at k=%d: %v", k, s)
		}
	}
}
