// Package kshape implements the k-Shape time-series clustering
// algorithm of Paparrizos & Gravano (SIGMOD 2015), the method the paper
// uses to (attempt to) group the 20 mobile services by the shape of
// their weekly demand (Fig. 5). A z-normalized Euclidean k-means
// baseline is included for the clusterer ablation.
//
// k-Shape couples a shift-invariant distance — the shape-based distance
// SBD(x, y) = 1 - max NCC_c(x, y) — with a centroid computation (shape
// extraction) that finds the sequence maximizing squared similarity to
// all aligned cluster members, i.e. the dominant eigenvector of a
// centered Gram matrix.
package kshape

import (
	"repro/internal/dsp"
)

// SBD returns the shape-based distance between x and y, in [0, 2],
// together with the shift (in samples) that best aligns y to x.
// SBD(x, x) == 0; two anti-correlated shapes approach 2.
func SBD(x, y []float64) (dist float64, shift int) {
	v, s := dsp.MaxNCC(x, y)
	return 1 - v, s
}

// Shift returns y displaced by s samples with zero padding: a positive
// s delays the sequence (content moves right). The result has the same
// length as y.
func Shift(y []float64, s int) []float64 {
	out := make([]float64, len(y))
	for i := range y {
		j := i - s
		if j >= 0 && j < len(y) {
			out[i] = y[j]
		}
	}
	return out
}

// AlignTo returns y shifted so that it best aligns with the reference
// sequence ref under the NCC criterion (the alignment step of
// k-Shape's refinement phase).
func AlignTo(ref, y []float64) []float64 {
	if isZero(ref) || isZero(y) {
		// No shape information to align against.
		out := make([]float64, len(y))
		copy(out, y)
		return out
	}
	_, s := dsp.MaxNCC(ref, y)
	return Shift(y, s)
}

func isZero(x []float64) bool {
	for _, v := range x {
		if v != 0 {
			return false
		}
	}
	return true
}

// DistanceMatrix returns the symmetric SBD matrix of the given series
// set; entry [i][j] is SBD(series[i], series[j]).
func DistanceMatrix(series [][]float64) [][]float64 {
	n := len(series)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d, _ := SBD(series[i], series[j])
			m[i][j] = d
			m[j][i] = d
		}
	}
	return m
}
